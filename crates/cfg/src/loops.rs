//! Loop-nesting forest with irreducible-loop detection.
//!
//! Loops are discovered by recursive strongly-connected-component
//! decomposition (in the spirit of Havlak's loop forest): every
//! non-trivial SCC is a loop; its *entries* are the SCC nodes reached from
//! outside. A single entry that dominates the whole SCC gives a reducible
//! natural loop; multiple entries give an **irreducible loop** — the
//! construct the paper's Section 3.2 lists as a tier-one challenge ("there
//! exists no feasible approach to automatically bound this kind of loops")
//! and that MISRA rule 14.4 (`goto`) and rule 20.7 (`setjmp`/`longjmp`)
//! exist to prevent.

use std::collections::BTreeSet;

use crate::block::BlockId;
use crate::dom::Dominators;
use crate::graph::Cfg;

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

/// One loop in the nesting forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// This loop's id.
    pub id: LoopId,
    /// Representative header: the unique entry for reducible loops, the
    /// lowest-RPO entry for irreducible ones.
    pub header: BlockId,
    /// All blocks through which the loop can be entered from outside.
    /// More than one ⇒ irreducible.
    pub entries: Vec<BlockId>,
    /// Every block belonging to the loop (including nested loops).
    pub blocks: BTreeSet<BlockId>,
    /// Edges from inside the loop back to an entry (the iteration edges).
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Edges leaving the loop, as `(from inside, to outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
    /// Enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
    /// True if the loop has multiple entries or its header fails to
    /// dominate the whole body.
    pub irreducible: bool,
}

/// The loop-nesting forest of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Computes the forest for `cfg` using its dominator tree.
    ///
    /// # Example
    ///
    /// ```
    /// use wcet_isa::asm::assemble;
    /// use wcet_cfg::graph::{reconstruct, TargetResolver};
    /// use wcet_cfg::dom::Dominators;
    /// use wcet_cfg::loops::LoopForest;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let image = assemble(
    ///     "main: li r1, 9\nhead: beq r1, r0, out\n subi r1, r1, 1\n j head\nout: halt",
    /// )?;
    /// let p = reconstruct(&image, &TargetResolver::empty())?;
    /// let cfg = p.entry_cfg();
    /// let forest = LoopForest::compute(cfg, &Dominators::compute(cfg));
    /// assert_eq!(forest.len(), 1);
    /// assert!(!forest.loops()[0].irreducible);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        let n = cfg.block_count();
        let all: Vec<BlockId> = (0..n).map(BlockId).collect();
        let mut forest = LoopForest {
            loops: Vec::new(),
            innermost: vec![None; n],
        };
        forest.discover(cfg, dom, &all, None, 0);
        // Assign innermost loops: process loops outermost-first so deeper
        // loops overwrite.
        let order: Vec<LoopId> = {
            let mut ids: Vec<LoopId> = forest.loops.iter().map(|l| l.id).collect();
            ids.sort_by_key(|&id| forest.loops[id.0].depth);
            ids
        };
        for id in order {
            for &b in forest.loops[id.0].blocks.clone().iter() {
                forest.innermost[b.0] = Some(id);
            }
        }
        forest
    }

    /// Number of loops found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Returns true if the function is loop-free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// All loops, indexable by [`LoopId`].
    #[must_use]
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0]
    }

    /// The innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost_of(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.0]
    }

    /// All irreducible loops.
    #[must_use]
    pub fn irreducible_loops(&self) -> Vec<&LoopInfo> {
        self.loops.iter().filter(|l| l.irreducible).collect()
    }

    /// Loops with no parent (top level).
    #[must_use]
    pub fn top_level(&self) -> Vec<&LoopInfo> {
        self.loops.iter().filter(|l| l.parent.is_none()).collect()
    }

    /// Recursively discovers loops inside the node subset `subset`.
    fn discover(
        &mut self,
        cfg: &Cfg,
        dom: &Dominators,
        subset: &[BlockId],
        parent: Option<LoopId>,
        depth: usize,
    ) {
        let in_subset: BTreeSet<BlockId> = subset.iter().copied().collect();
        for scc in sccs(cfg, &in_subset) {
            let scc_set: BTreeSet<BlockId> = scc.iter().copied().collect();
            let is_cycle = scc.len() > 1 || cfg.succs[scc[0].0].contains(&scc[0]);
            if !is_cycle {
                continue;
            }

            // Entries: SCC nodes with a predecessor outside the SCC
            // (looking at the whole CFG, so outer-loop context counts),
            // plus the function entry block if it is inside.
            let mut entries: Vec<BlockId> = scc
                .iter()
                .copied()
                .filter(|&b| {
                    b == cfg.entry_block() || cfg.preds[b.0].iter().any(|p| !scc_set.contains(p))
                })
                .collect();
            entries.sort_by_key(|&b| dom.rpo_number(b));
            if entries.is_empty() {
                // Unreachable cycle: treat its lowest block as the entry so
                // it is still reported.
                entries.push(scc[0]);
            }

            let header = entries[0];
            let dominated = scc.iter().all(|&b| dom.dominates(header, b));
            let irreducible = entries.len() > 1 || !dominated;

            let back_edges: Vec<(BlockId, BlockId)> = scc
                .iter()
                .flat_map(|&u| {
                    cfg.succs[u.0]
                        .iter()
                        .copied()
                        .filter(|t| entries.contains(t))
                        .map(move |t| (u, t))
                })
                .collect();

            let exits: Vec<(BlockId, BlockId)> = scc
                .iter()
                .flat_map(|&u| {
                    cfg.succs[u.0]
                        .iter()
                        .copied()
                        .filter(|t| !scc_set.contains(t))
                        .map(move |t| (u, t))
                })
                .collect();

            let id = LoopId(self.loops.len());
            self.loops.push(LoopInfo {
                id,
                header,
                entries: entries.clone(),
                blocks: scc_set,
                back_edges,
                exits,
                parent,
                children: Vec::new(),
                depth,
                irreducible,
            });
            if let Some(p) = parent {
                self.loops[p.0].children.push(id);
            }

            // Nested loops: drop the entries and decompose the rest.
            let inner: Vec<BlockId> = scc
                .iter()
                .copied()
                .filter(|b| !entries.contains(b))
                .collect();
            if !inner.is_empty() {
                self.discover(cfg, dom, &inner, Some(id), depth + 1);
            }
        }
    }
}

/// Tarjan's SCC algorithm restricted to `subset`; returns the components.
fn sccs(cfg: &Cfg, subset: &BTreeSet<BlockId>) -> Vec<Vec<BlockId>> {
    struct State<'a> {
        cfg: &'a Cfg,
        subset: &'a BTreeSet<BlockId>,
        index: usize,
        indices: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<BlockId>,
        out: Vec<Vec<BlockId>>,
    }

    fn strongconnect(s: &mut State<'_>, v: BlockId) {
        s.indices[v.0] = Some(s.index);
        s.lowlink[v.0] = s.index;
        s.index += 1;
        s.stack.push(v);
        s.on_stack[v.0] = true;

        for &w in &s.cfg.succs[v.0] {
            if !s.subset.contains(&w) {
                continue;
            }
            if s.indices[w.0].is_none() {
                strongconnect(s, w);
                s.lowlink[v.0] = s.lowlink[v.0].min(s.lowlink[w.0]);
            } else if s.on_stack[w.0] {
                s.lowlink[v.0] = s.lowlink[v.0].min(s.indices[w.0].expect("indexed"));
            }
        }

        if s.lowlink[v.0] == s.indices[v.0].expect("indexed") {
            let mut comp = Vec::new();
            loop {
                let w = s.stack.pop().expect("stack nonempty");
                s.on_stack[w.0] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort();
            s.out.push(comp);
        }
    }

    let n = cfg.block_count();
    let mut state = State {
        cfg,
        subset,
        index: 0,
        indices: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        out: Vec::new(),
    };
    for &v in subset {
        if state.indices[v.0].is_none() {
            strongconnect(&mut state, v);
        }
    }
    state.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn forest_of(src: &str) -> (crate::graph::Program, LoopForest) {
        let p = reconstruct(&assemble(src).unwrap(), &TargetResolver::empty()).unwrap();
        let dom = Dominators::compute(p.entry_cfg());
        let f = LoopForest::compute(p.entry_cfg(), &dom);
        (p, f)
    }

    #[test]
    fn no_loops_in_straight_line() {
        let (_, f) = forest_of("main: li r1, 1\n halt");
        assert!(f.is_empty());
    }

    #[test]
    fn single_counter_loop() {
        let (p, f) = forest_of("main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert_eq!(f.len(), 1);
        let l = &f.loops()[0];
        assert!(!l.irreducible);
        assert_eq!(l.entries.len(), 1);
        assert_eq!(l.back_edges.len(), 1);
        assert_eq!(l.exits.len(), 1);
        let cfg = p.entry_cfg();
        assert_eq!(l.header, cfg.block_at(p.entry.offset(4)).unwrap());
    }

    #[test]
    fn nested_loops_have_parents() {
        let (_, f) = forest_of(
            r#"
            main: li r1, 3
            outer: li r2, 4
            inner: subi r2, r2, 1
                   bne r2, r0, inner
                   subi r1, r1, 1
                   bne r1, r0, outer
                   halt
            "#,
        );
        assert_eq!(f.len(), 2);
        let outer = f.top_level();
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].children.len(), 1);
        let inner = f.info(outer[0].children[0]);
        assert_eq!(inner.parent, Some(outer[0].id));
        assert_eq!(inner.depth, 1);
        assert!(inner.blocks.is_subset(&outer[0].blocks));
    }

    #[test]
    fn goto_into_loop_body_is_irreducible() {
        // Two entries into the cycle {a, b}: via `a` from the entry branch,
        // and via `b` through the goto-style jump — the classic irreducible
        // shape of the paper's rule 14.4 discussion.
        let (_, f) = forest_of(
            r#"
            main: beq r1, r0, b
            a:    subi r2, r2, 1
                  j b
            b:    addi r2, r2, 1
                  bne r2, r0, a
                  halt
            "#,
        );
        assert_eq!(f.len(), 1);
        assert!(f.loops()[0].irreducible);
        assert!(f.loops()[0].entries.len() > 1);
        assert_eq!(f.irreducible_loops().len(), 1);
    }

    #[test]
    fn while_loop_with_two_back_edges_continue_style() {
        // A `continue` adds a second back edge but keeps the loop
        // reducible — exactly the paper's point about MISRA rule 14.5.
        let (_, f) = forest_of(
            r#"
            main: li r1, 10
            head: beq r1, r0, done
                  subi r1, r1, 1
                  beq r2, r0, head      # the `continue`
                  subi r2, r2, 1
                  j head
            done: halt
            "#,
        );
        assert_eq!(f.len(), 1);
        let l = &f.loops()[0];
        assert!(
            !l.irreducible,
            "continue must not make the loop irreducible"
        );
        assert_eq!(l.back_edges.len(), 2);
    }

    #[test]
    fn innermost_assignment() {
        let (p, f) = forest_of(
            r#"
            main: li r1, 3
            outer: li r2, 4
            inner: subi r2, r2, 1
                   bne r2, r0, inner
                   subi r1, r1, 1
                   bne r1, r0, outer
                   halt
            "#,
        );
        let cfg = p.entry_cfg();
        let inner_block = cfg.block_at(p.entry.offset(8)).unwrap();
        let inner_loop = f.innermost_of(inner_block).unwrap();
        assert_eq!(f.info(inner_loop).depth, 1);
        let outer_header = cfg.block_at(p.entry.offset(4)).unwrap();
        let outer_loop = f.innermost_of(outer_header).unwrap();
        assert_eq!(f.info(outer_loop).depth, 0);
    }

    #[test]
    fn self_loop_detected() {
        let (_, f) = forest_of("main: nop\nspin: j spin");
        assert_eq!(f.len(), 1);
        assert_eq!(f.loops()[0].blocks.len(), 1);
        assert!(!f.loops()[0].irreducible);
        // A self-loop with no exit edge (infinite loop).
        assert!(f.loops()[0].exits.is_empty());
    }
}
