//! The Table 1 harness: iteration-count histogram for `ldivmod`.
//!
//! The paper applied the CodeWarrior `lDivMod` to 10⁸ random inputs and
//! tabulated the observed iteration counts (Table 1): 99 881 801 × one
//! iteration, a monotone drop through the small counts, and isolated
//! pathological inputs at 156/186/204 iterations.
//!
//! The paper does not state its sampling distribution; we chose one
//! consistent with Table 1's marginals — dividends from the upper
//! quarter of the 32-bit range, divisors from the band `[2²⁰, 2²⁸)` where
//! the truncation gap matters, and a ~1.5·10⁻⁵ chance of `n < d`
//! (matching the paper's 1 552 zero-iteration samples per 10⁸). The
//! bucket boundaries are exactly the paper's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ldivmod::ldivmod;

/// The paper's Table 1 bucket boundaries (inclusive ranges).
pub const BUCKETS: [(u32, u32); 11] = [
    (0, 0),
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 9),
    (10, 19),
    (20, 39),
    (40, 59),
    (60, 79),
    (80, 99),
    (100, 135),
];

/// Configuration for the Table 1 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Config {
    /// Number of random samples (the paper used 10⁸).
    pub samples: u64,
    /// RNG seed, for reproducible tables.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            samples: 10_000_000,
            seed: 0x5eed_1dd1,
        }
    }
}

/// The measured histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationHistogram {
    /// Counts per bucket, parallel to [`BUCKETS`].
    pub bucket_counts: [u64; BUCKETS.len()],
    /// Samples beyond the last bucket: `(iterations, example input)`.
    pub outliers: Vec<(u32, (u32, u32))>,
    /// Total samples.
    pub samples: u64,
    /// Maximum iteration count observed.
    pub max_iterations: u32,
}

impl IterationHistogram {
    /// Fraction of samples in the one-iteration bucket (the paper's
    /// "more than 99.8 %" claim).
    #[must_use]
    pub fn one_iteration_fraction(&self) -> f64 {
        self.bucket_counts[1] as f64 / self.samples as f64
    }

    /// Fraction of samples with 0, 1, or 2 iterations (the paper's
    /// "more than 99.999 %" claim — see EXPERIMENTS.md for our measured
    /// counterpart).
    #[must_use]
    pub fn upto_two_fraction(&self) -> f64 {
        (self.bucket_counts[0] + self.bucket_counts[1] + self.bucket_counts[2]) as f64
            / self.samples as f64
    }

    /// Formats rows like the paper's Table 1: one row per bucket, then
    /// one row per distinct outlier iteration count (with an example
    /// input, the way the paper annotates its 156/186/204 rows).
    #[must_use]
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::new();
        for ((lo, hi), &count) in BUCKETS.iter().zip(&self.bucket_counts) {
            let label = if lo == hi {
                lo.to_string()
            } else {
                format!("{lo} .. {hi}")
            };
            rows.push((label, count));
        }
        let mut grouped: std::collections::BTreeMap<u32, (u64, (u32, u32))> =
            std::collections::BTreeMap::new();
        for &(iters, input) in &self.outliers {
            let entry = grouped.entry(iters).or_insert((0, input));
            entry.0 += 1;
        }
        for (iters, (count, (n, d))) in grouped {
            rows.push((
                format!("{iters}  e.g. ldivmod(0x{n:08x}, 0x{d:08x})"),
                count,
            ));
        }
        rows
    }
}

/// Runs the Table 1 experiment.
///
/// # Panics
///
/// Panics if `config.samples` is zero.
#[must_use]
pub fn run_table1(config: &Table1Config) -> IterationHistogram {
    assert!(config.samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut hist = IterationHistogram {
        bucket_counts: [0; BUCKETS.len()],
        outliers: Vec::new(),
        samples: config.samples,
        max_iterations: 0,
    };
    for _ in 0..config.samples {
        let (n, d) = sample_input(&mut rng);
        let iters = ldivmod(n, d).expect("d nonzero by construction").iterations;
        record(&mut hist, iters, n, d);
    }
    hist
}

/// Draws one `(dividend, divisor)` pair from the documented distribution:
/// dividends from the upper 15/16 of the 32-bit range; divisors usually
/// from `[2²⁷, 2²⁸)` (where the quotient estimate is near-exact) with a
/// 1/1024 chance of the pathological band `[2²⁰, 2²⁴)` (where the
/// truncation gap drives the long tail), and a 1/65536 chance of `n < d`
/// (the paper's rare zero-iteration samples).
pub fn sample_input<R: Rng>(rng: &mut R) -> (u32, u32) {
    let n: u32 = rng.gen_range(0x1000_0000..=u32::MAX);
    let d: u32 = if rng.gen_ratio(1, 1024) {
        rng.gen_range(0x0010_0000..0x0100_0000)
    } else {
        rng.gen_range(0x0800_0000..0x1000_0000)
    };
    // Rare n < d cases, mirroring the paper's 1552-per-10⁸ zero bucket.
    if rng.gen_ratio(1, 65_536) {
        (d.min(n.wrapping_sub(1)).max(1), n.max(2))
    } else {
        (n, d)
    }
}

fn record(hist: &mut IterationHistogram, iters: u32, n: u32, d: u32) {
    hist.max_iterations = hist.max_iterations.max(iters);
    for (i, (lo, hi)) in BUCKETS.iter().enumerate() {
        if iters >= *lo && iters <= *hi {
            hist.bucket_counts[i] += 1;
            return;
        }
    }
    hist.outliers.push((iters, (n, d)));
}

/// The paper's three pathological inputs (Table 1's bottom rows) and the
/// iteration counts *our* routine needs for them. The absolute counts
/// differ from the proprietary original; what is reproduced is the
/// existence of an unpredictable tail.
#[must_use]
pub fn paper_pathological_inputs() -> Vec<((u32, u32), u32)> {
    let pairs = [
        (0xffd9_3580u32, 0x0107_d228u32), // paper: 156 iterations
        (0xfff2_c009, 0x0118_dcc4),       // paper: 186
        (0xffe8_70e3, 0x0141_4167),       // paper: 204
    ];
    pairs
        .iter()
        .map(|&(n, d)| ((n, d), ldivmod(n, d).expect("nonzero").iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_shape_matches_paper() {
        let hist = run_table1(&Table1Config {
            samples: 200_000,
            seed: 42,
        });
        // Dominant single-iteration bucket.
        assert!(
            hist.one_iteration_fraction() > 0.90,
            "one-iteration fraction {} too small",
            hist.one_iteration_fraction()
        );
        // Monotone drop over the small buckets.
        assert!(hist.bucket_counts[1] > hist.bucket_counts[2]);
        assert!(hist.bucket_counts[2] > hist.bucket_counts[4]);
        // A tail exists beyond 40 iterations.
        let tail: u64 = hist.bucket_counts[7..].iter().sum::<u64>() + hist.outliers.len() as u64;
        assert!(tail > 0, "expected a pathological tail");
        // But it is rare.
        assert!((tail as f64) / (hist.samples as f64) < 0.01);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = Table1Config {
            samples: 10_000,
            seed: 7,
        };
        assert_eq!(run_table1(&cfg), run_table1(&cfg));
    }

    #[test]
    fn rows_format_matches_paper_layout() {
        let hist = run_table1(&Table1Config {
            samples: 50_000,
            seed: 1,
        });
        let rows = hist.rows();
        assert!(rows.len() >= BUCKETS.len());
        assert_eq!(rows[0].0, "0");
        assert_eq!(rows[4].0, "4 .. 9");
        assert_eq!(rows[10].0, "100 .. 135");
    }

    #[test]
    fn pathological_inputs_run() {
        let results = paper_pathological_inputs();
        assert_eq!(results.len(), 3);
        for ((n, d), iters) in results {
            // Verify against native division too.
            let r = ldivmod(n, d).unwrap();
            assert_eq!(r.quotient, n / d);
            assert_eq!(r.iterations, iters);
        }
    }

    #[test]
    fn sampler_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let (n, d) = sample_input(&mut rng);
            assert!(d >= 1);
            assert!(n >= 1);
        }
    }
}
