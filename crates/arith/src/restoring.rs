//! Restoring division: the WCET-predictable alternative.
//!
//! The paper's remedy for the `lDivMod` problem is "making sure that the
//! used software arithmetic library features good WCET analyzability".
//! Classic restoring division runs a *fixed* 32-iteration shift-subtract
//! loop: slower on average than the approximation routine, but its worst
//! case equals its every case — a static analyzer bounds it automatically
//! and exactly.

use crate::ldivmod::{DivByZero, DivResult};

/// Computes `n / d` and `n % d` by 32-step restoring division.
///
/// `iterations` is always exactly 32 — that constancy *is* the
/// predictability property.
///
/// # Errors
///
/// Returns [`DivByZero`] when `d == 0`.
///
/// # Example
///
/// ```
/// use wcet_arith::restoring::restoring_div;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r = restoring_div(1234, 99)?;
/// assert_eq!((r.quotient, r.remainder, r.iterations), (12, 46, 32));
/// # Ok(())
/// # }
/// ```
pub fn restoring_div(n: u32, d: u32) -> Result<DivResult, DivByZero> {
    if d == 0 {
        return Err(DivByZero);
    }
    let mut remainder: u64 = 0;
    let mut quotient: u32 = 0;
    let mut iterations = 0u32;
    for bit in (0..32).rev() {
        iterations += 1;
        remainder = (remainder << 1) | u64::from((n >> bit) & 1);
        if remainder >= u64::from(d) {
            remainder -= u64::from(d);
            quotient |= 1 << bit;
        }
    }
    Ok(DivResult {
        quotient,
        remainder: remainder as u32,
        iterations,
    })
}

/// Shift-subtract division with early exit on the leading zeros of the
/// dividend: the "optimized average case" middle ground. Its iteration
/// count (`32 − leading_zeros(n)`, or 1 for `n = 0`) is data-dependent
/// but *trivially bounded* by 32 — analyzable, unlike `ldivmod`'s
/// correction loop, but with a 32× spread between best and worst case.
///
/// # Errors
///
/// Returns [`DivByZero`] when `d == 0`.
pub fn early_exit_div(n: u32, d: u32) -> Result<DivResult, DivByZero> {
    if d == 0 {
        return Err(DivByZero);
    }
    let significant = 32 - n.leading_zeros();
    let steps = significant.max(1);
    let mut remainder: u64 = 0;
    let mut quotient: u32 = 0;
    let mut iterations = 0u32;
    for bit in (0..steps).rev() {
        iterations += 1;
        remainder = (remainder << 1) | u64::from((n >> bit) & 1);
        if remainder >= u64::from(d) {
            remainder -= u64::from(d);
            quotient |= 1 << bit;
        }
    }
    Ok(DivResult {
        quotient,
        remainder: remainder as u32,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_divisor_rejected() {
        assert_eq!(restoring_div(1, 0), Err(DivByZero));
        assert_eq!(early_exit_div(1, 0), Err(DivByZero));
    }

    #[test]
    fn constant_iteration_count() {
        for (n, d) in [
            (0u32, 1u32),
            (1, 1),
            (u32::MAX, 1),
            (u32::MAX, u32::MAX),
            (7, 3),
        ] {
            assert_eq!(restoring_div(n, d).unwrap().iterations, 32);
        }
    }

    #[test]
    fn early_exit_depends_on_magnitude() {
        assert_eq!(early_exit_div(0, 5).unwrap().iterations, 1);
        assert_eq!(early_exit_div(1, 5).unwrap().iterations, 1);
        assert_eq!(early_exit_div(0xff, 5).unwrap().iterations, 8);
        assert_eq!(early_exit_div(u32::MAX, 5).unwrap().iterations, 32);
    }

    proptest! {
        #[test]
        fn prop_restoring_matches_native(n in any::<u32>(), d in 1u32..) {
            let r = restoring_div(n, d).unwrap();
            prop_assert_eq!(r.quotient, n / d);
            prop_assert_eq!(r.remainder, n % d);
        }

        #[test]
        fn prop_early_exit_matches_native(n in any::<u32>(), d in 1u32..) {
            let r = early_exit_div(n, d).unwrap();
            prop_assert_eq!(r.quotient, n / d);
            prop_assert_eq!(r.remainder, n % d);
            prop_assert!(r.iterations <= 32);
        }

        /// All three division routines agree with each other.
        #[test]
        fn prop_agreement(n in any::<u32>(), d in 1u32..) {
            let a = crate::ldivmod::ldivmod(n, d).unwrap();
            let b = restoring_div(n, d).unwrap();
            prop_assert_eq!((a.quotient, a.remainder), (b.quotient, b.remainder));
        }
    }
}
