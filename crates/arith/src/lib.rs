//! # wcet-arith — software arithmetic and the Table 1 experiment
//!
//! The paper's Section 4.3 ("Software Arithmetic") observes that software
//! arithmetic routines are "usually designed to provide good average-case
//! performance, but are not implemented with good WCET predictability in
//! mind", and demonstrates it with the CodeWarrior `lDivMod` routine for
//! the Freescale HCS12X: ≥ 99.8 % of 10⁸ random inputs finish in one
//! approximation iteration, yet rare inputs need > 150 — and "there seems
//! to be no simple way to derive the number of iterations from given
//! inputs".
//!
//! The original routine is proprietary; per the reproduction's
//! substitution rule this crate implements the same *algorithm class* —
//! 32/32-bit unsigned division on a machine with only a 16-bit divider,
//! via a truncated-divisor quotient estimate plus a data-dependent
//! correction loop — and reproduces the paper's distribution shape
//! (dominant single iteration, sparse tail into the hundreds):
//!
//! * [`ldivmod()`] — the average-case-optimized routine, instrumented to
//!   count correction-loop iterations,
//! * [`restoring`] — the WCET-predictable alternative: classic restoring
//!   division with a *constant* 32 iterations,
//! * [`softfloat`] — software floating-point helpers with data-dependent
//!   normalization loops (the same predictability problem in another
//!   guise),
//! * [`histogram`] — the Table 1 harness: iteration-count histogram with
//!   the paper's exact bucket boundaries,
//! * [`kernels`] — the same routines as ISA binaries, so the static WCET
//!   analyzer can be run *on* them (experiment E14).
//!
//! # Example
//!
//! ```
//! use wcet_arith::{ldivmod, restoring};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r = ldivmod::ldivmod(1_000_000, 7)?;
//! assert_eq!(r.quotient, 142_857);
//! assert_eq!(r.remainder, 1);
//!
//! let s = restoring::restoring_div(1_000_000, 7)?;
//! assert_eq!((s.quotient, s.remainder), (r.quotient, r.remainder));
//! assert_eq!(s.iterations, 32, "restoring division is constant-time");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod histogram;
pub mod kernels;
pub mod ldivmod;
pub mod restoring;
pub mod softfloat;

pub use histogram::{IterationHistogram, Table1Config};
pub use ldivmod::{ldivmod, DivByZero, DivResult};
