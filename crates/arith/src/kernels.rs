//! The division routines as ISA binaries, for analysis *of* them.
//!
//! Experiment E14 runs the static WCET analyzer on the software-arithmetic
//! routines themselves: the average-case-optimized [`ldivmod_kernel`]
//! contains a data-dependent correction loop that the loop-bound analysis
//! cannot bound (tier-one failure → annotation required), while the
//! [`restoring_kernel`] is a constant 32-iteration counter loop that is
//! bounded automatically and exactly — the paper's "software arithmetic
//! library with good WCET analyzability".
//!
//! Calling convention of both kernels: dividend in `r1`, divisor in `r2`;
//! on halt, quotient in `r3`, remainder in `r4`.

use wcet_isa::asm::assemble;
use wcet_isa::{Addr, Image, Reg};

/// A division kernel binary plus its interface registers.
#[derive(Debug, Clone)]
pub struct DivKernel {
    /// The linked binary.
    pub image: Image,
    /// Dividend input register (`r1`).
    pub n_reg: Reg,
    /// Divisor input register (`r2`).
    pub d_reg: Reg,
    /// Quotient output register (`r3`).
    pub q_reg: Reg,
    /// Remainder output register (`r4`).
    pub r_reg: Reg,
    /// Header address of the data-dependent correction loop, if the
    /// kernel has one (the annotation target).
    pub correction_loop: Option<Addr>,
}

fn interface(image: Image, correction_loop: Option<Addr>) -> DivKernel {
    DivKernel {
        image,
        n_reg: Reg::new(1),
        d_reg: Reg::new(2),
        q_reg: Reg::new(3),
        r_reg: Reg::new(4),
        correction_loop,
    }
}

/// Restoring division: a fixed 32-iteration shift-subtract loop.
///
/// Precondition: divisor `d < 2³¹` and `d > 0` (the shift-subtract
/// remainder stays below `2·d`, so it never wraps).
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble, which would be
/// a bug in this crate.
#[must_use]
pub fn restoring_kernel() -> DivKernel {
    let image = assemble(
        r#"
        # restoring division: r3:r4 = r1 / r2, constant 32 iterations
        main:
            li   r3, 0          # quotient
            li   r4, 0          # remainder
            li   r8, 32         # bit counter
        loop:
            shri r9, r1, 31     # top bit of the dividend window
            shli r1, r1, 1
            shli r4, r4, 1
            or   r4, r4, r9
            shli r3, r3, 1
            sltu r10, r4, r2
            bne  r10, r0, skip
            sub  r4, r4, r2
            ori  r3, r3, 1
        skip:
            subi r8, r8, 1
            bne  r8, r0, loop
            halt
        "#,
    )
    .expect("restoring kernel assembles");
    interface(image, None)
}

/// The `ldivmod`-style kernel: 16-bit-divider quotient estimate (a
/// bounded 16-step subloop) followed by the data-dependent correction
/// loop.
///
/// Precondition: `2¹⁶ ≤ d < 2³¹` (the hardware small-divisor path of the
/// Rust routine is omitted; it is the software path whose predictability
/// the experiment studies).
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble, which would be
/// a bug in this crate.
#[must_use]
pub fn ldivmod_kernel() -> DivKernel {
    let image = assemble(
        r#"
        # ldivmod: estimate + unit-subtraction correction
        main:
            shri r5, r1, 16     # num = n >> 16
            shri r6, r2, 16
            addi r6, r6, 1      # den = (d >> 16) + 1
            li   r3, 0          # quotient estimate
            li   r7, 0          # 16-bit remainder window
            li   r8, 16         # bit counter
        est:
            shri r9, r5, 15
            andi r9, r9, 1
            shli r5, r5, 1
            shli r7, r7, 1
            or   r7, r7, r9
            shli r3, r3, 1
            sltu r10, r7, r6
            bne  r10, r0, est_skip
            sub  r7, r7, r6
            ori  r3, r3, 1
        est_skip:
            subi r8, r8, 1
            bne  r8, r0, est
            # remainder = n - q_est * d  (q_est never overshoots)
            mul  r9, r3, r2
            sub  r4, r1, r9
        corr:
            sltu r10, r4, r2
            bne  r10, r0, done
            sub  r4, r4, r2
            addi r3, r3, 1
            j    corr
        done:
            halt
        "#,
    )
    .expect("ldivmod kernel assembles");
    let corr = image.symbol("corr");
    interface(image, corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldivmod::ldivmod;
    use crate::restoring::restoring_div;
    use wcet_analysis::analyze_function;
    use wcet_analysis::loopbound::BoundResult;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::interp::{Interpreter, MachineConfig};

    fn run_kernel(kernel: &DivKernel, n: u32, d: u32) -> (u32, u32, u64) {
        let mut interp = Interpreter::with_config(&kernel.image, MachineConfig::simple());
        interp.set_reg(kernel.n_reg, n);
        interp.set_reg(kernel.d_reg, d);
        let outcome = interp.run(1_000_000).expect("kernel halts");
        (
            interp.reg(kernel.q_reg),
            interp.reg(kernel.r_reg),
            outcome.cycles,
        )
    }

    #[test]
    fn restoring_kernel_matches_rust_model() {
        let kernel = restoring_kernel();
        for (n, d) in [
            (100u32, 7u32),
            (0, 1),
            (0xffff_ffff, 3),
            (12345, 12345),
            (5, 9),
        ] {
            let (q, r, _) = run_kernel(&kernel, n, d);
            let expect = restoring_div(n, d).unwrap();
            assert_eq!((q, r), (expect.quotient, expect.remainder), "{n}/{d}");
        }
    }

    #[test]
    fn ldivmod_kernel_matches_rust_model() {
        let kernel = ldivmod_kernel();
        for (n, d) in [
            (0xffff_ffffu32, 0x0001_0000u32),
            (0xffd9_3580, 0x0107_d228),
            (0x1234_5678, 0x0010_0001),
            (0x0010_0000, 0x0010_0000),
        ] {
            let (q, r, _) = run_kernel(&kernel, n, d);
            let expect = ldivmod(n, d).unwrap();
            assert_eq!((q, r), (expect.quotient, expect.remainder), "{n:#x}/{d:#x}");
        }
    }

    #[test]
    fn restoring_kernel_cycles_are_input_independent() {
        let kernel = restoring_kernel();
        let (_, _, c1) = run_kernel(&kernel, 0, 1);
        let (_, _, c2) = run_kernel(&kernel, 0xffff_ffff, 1);
        // Cycle counts differ only through the taken/not-taken subtract
        // branch; the iteration structure is constant. Verify within the
        // branch-cost slack.
        let slack = 32 * 4;
        assert!(c1.abs_diff(c2) <= slack, "{c1} vs {c2}");
    }

    #[test]
    fn restoring_kernel_loop_auto_bounded() {
        let kernel = restoring_kernel();
        let p = reconstruct(&kernel.image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &kernel.image);
        let bounds = fa.loop_bounds();
        assert_eq!(bounds.results().len(), 1);
        assert_eq!(bounds.results()[0].1.max_iterations(), Some(32));
    }

    #[test]
    fn ldivmod_kernel_correction_loop_unbounded() {
        let kernel = ldivmod_kernel();
        let p = reconstruct(&kernel.image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &kernel.image);
        let bounds = fa.loop_bounds();
        assert_eq!(bounds.results().len(), 2, "estimate loop + correction loop");
        // The estimate loop is bounded (16), the correction loop is not.
        let values: Vec<Option<u64>> = bounds
            .results()
            .iter()
            .map(|(_, r)| r.max_iterations())
            .collect();
        assert!(values.contains(&Some(16)));
        assert!(values.contains(&None), "correction loop must be unbounded");
        assert!(bounds
            .results()
            .iter()
            .any(|(_, r)| matches!(r, BoundResult::Unbounded { .. })));
    }
}
