//! Software floating-point helpers: the same predictability problem in
//! another guise.
//!
//! The paper's motivating platform (Freescale MPC5554) supports only
//! single-precision floating point in hardware; anything wider runs in
//! software, "usually designed to provide good average-case performance".
//! The instrumented routines here expose where the data dependence hides:
//! the *normalization shift loop* of addition runs between 0 and 47
//! iterations depending on how much cancellation the operand values
//! produce — invisible to any integer value analysis.

use std::fmt;

/// A software single-precision float: sign, exponent, significand held in
/// integer fields (what the emulation library manipulates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftF32 {
    /// Sign bit.
    pub sign: bool,
    /// Biased exponent (0..=255).
    pub exp: i32,
    /// 24-bit significand with the hidden bit explicit (normal numbers).
    pub frac: u32,
}

/// Instrumented result of a software float operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftOpResult {
    /// The result value (as a hardware float for checking).
    pub value: f32,
    /// Iterations of the data-dependent normalization loop.
    pub norm_iterations: u32,
}

/// Error for non-finite/unsupported inputs to the simplified emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedValue;

impl fmt::Display for UnsupportedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("non-finite or subnormal value unsupported by the soft-float model")
    }
}

impl std::error::Error for UnsupportedValue {}

impl SoftF32 {
    /// Unpacks a hardware float.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedValue`] for NaN, infinities, and subnormals
    /// (the model covers the normal range; real libraries add more
    /// data-dependent paths for these, making matters worse).
    pub fn unpack(x: f32) -> Result<SoftF32, UnsupportedValue> {
        if !x.is_finite() || (x != 0.0 && x.abs() < f32::MIN_POSITIVE) {
            return Err(UnsupportedValue);
        }
        let bits = x.to_bits();
        let sign = bits >> 31 == 1;
        let exp = ((bits >> 23) & 0xff) as i32;
        let frac = bits & 0x7f_ffff;
        if exp == 0 {
            // Zero.
            return Ok(SoftF32 {
                sign,
                exp: 0,
                frac: 0,
            });
        }
        Ok(SoftF32 {
            sign,
            exp,
            frac: frac | 0x80_0000,
        })
    }

    /// Packs back into a hardware float (assumes normalized input).
    #[must_use]
    pub fn pack(&self) -> f32 {
        if self.frac == 0 {
            return if self.sign { -0.0 } else { 0.0 };
        }
        let bits = (u32::from(self.sign) << 31)
            | ((self.exp as u32 & 0xff) << 23)
            | (self.frac & 0x7f_ffff);
        f32::from_bits(bits)
    }
}

/// Software float addition with an instrumented normalization loop.
///
/// # Errors
///
/// Returns [`UnsupportedValue`] for inputs outside the modeled range.
pub fn soft_add(a: f32, b: f32) -> Result<SoftOpResult, UnsupportedValue> {
    let x = SoftF32::unpack(a)?;
    let y = SoftF32::unpack(b)?;
    // Order by exponent.
    let (hi, lo) = if (x.exp, x.frac) >= (y.exp, y.frac) {
        (x, y)
    } else {
        (y, x)
    };
    if lo.frac == 0 {
        return Ok(SoftOpResult {
            value: hi.pack(),
            norm_iterations: 0,
        });
    }
    let shift = (hi.exp - lo.exp).min(31) as u32;
    // Work in 2.30-ish fixed point with 6 guard bits.
    let hi_m = u64::from(hi.frac) << 6;
    let lo_m = (u64::from(lo.frac) << 6) >> shift;

    let (mut mant, sign) = if hi.sign == lo.sign {
        (hi_m + lo_m, hi.sign)
    } else {
        (hi_m - lo_m, hi.sign)
    };
    let mut exp = hi.exp;

    // Normalization: shift until the hidden bit is at position 29
    // (23 + 6 guard bits). The iteration count depends on how much the
    // subtraction cancelled — pure data dependence.
    let mut norm_iterations = 0u32;
    if mant == 0 {
        return Ok(SoftOpResult {
            value: if sign { -0.0 } else { 0.0 },
            norm_iterations: 0,
        });
    }
    while mant >= 1 << 30 {
        mant >>= 1;
        exp += 1;
        norm_iterations += 1;
    }
    while mant < 1 << 29 {
        mant <<= 1;
        exp -= 1;
        norm_iterations += 1;
    }

    // Round to nearest (drop the guard bits).
    let frac = ((mant + (1 << 5)) >> 6) as u32;
    let result = SoftF32 {
        sign,
        exp,
        frac: frac.min(0xff_ffff),
    };
    Ok(SoftOpResult {
        value: result.pack(),
        norm_iterations,
    })
}

/// Software float multiplication with an instrumented normalization step.
///
/// Multiplication's normalization is a single conditional shift (the
/// product of two normalized significands is in `[1, 4)`), so unlike
/// addition it is nearly jitter-free — the comparison the E13/E14
/// discussion draws between algorithm classes, inside one library.
///
/// # Errors
///
/// Returns [`UnsupportedValue`] for inputs outside the modeled range.
pub fn soft_mul(a: f32, b: f32) -> Result<SoftOpResult, UnsupportedValue> {
    let x = SoftF32::unpack(a)?;
    let y = SoftF32::unpack(b)?;
    if x.frac == 0 || y.frac == 0 {
        return Ok(SoftOpResult {
            value: if x.sign != y.sign { -0.0 } else { 0.0 },
            norm_iterations: 0,
        });
    }
    let sign = x.sign != y.sign;
    // 24-bit × 24-bit significand product in 48 bits.
    let mut prod = u64::from(x.frac) * u64::from(y.frac);
    let mut exp = x.exp + y.exp - 127;
    let mut norm_iterations = 0u32;
    // Normalize so the hidden bit sits at position 46.
    while prod >= 1 << 47 {
        prod >>= 1;
        exp += 1;
        norm_iterations += 1;
    }
    // Round to 24 significand bits (drop 23).
    let frac = ((prod + (1 << 22)) >> 23) as u32;
    if !(1..=254).contains(&exp) {
        return Err(UnsupportedValue); // overflow/underflow outside the model
    }
    Ok(SoftOpResult {
        value: SoftF32 {
            sign,
            exp,
            frac: frac.min(0xff_ffff),
        }
        .pack(),
        norm_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32) -> bool {
        if b == 0.0 {
            a.abs() < 1e-30
        } else {
            ((a - b) / b).abs() < 1e-5
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        for v in [0.0f32, 1.0, -1.5, 3.25e10, -7.75e-10] {
            let s = SoftF32::unpack(v).unwrap();
            assert_eq!(s.pack(), v);
        }
    }

    #[test]
    fn unsupported_values_rejected() {
        assert!(SoftF32::unpack(f32::NAN).is_err());
        assert!(SoftF32::unpack(f32::INFINITY).is_err());
        assert!(SoftF32::unpack(1e-42).is_err()); // subnormal
    }

    #[test]
    fn same_magnitude_add_is_fast() {
        let r = soft_add(1.0, 1.0).unwrap();
        assert!(close(r.value, 2.0));
        assert!(r.norm_iterations <= 1);
    }

    #[test]
    fn cancellation_costs_many_normalization_steps() {
        // 1.0 − (1.0 − ε) cancels almost everything: long normalization.
        let eps = f32::from_bits(1.0f32.to_bits() - 1);
        let fast = soft_add(1.0, 1.0).unwrap();
        let slow = soft_add(1.0, -eps).unwrap();
        assert!(
            slow.norm_iterations > fast.norm_iterations + 10,
            "cancellation ({}) should dwarf the fast path ({})",
            slow.norm_iterations,
            fast.norm_iterations
        );
    }

    #[test]
    fn soft_mul_basics() {
        let r = soft_mul(2.0, 3.0).unwrap();
        assert!(close(r.value, 6.0));
        let r = soft_mul(-1.5, 4.0).unwrap();
        assert!(close(r.value, -6.0));
        let r = soft_mul(0.0, 123.0).unwrap();
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn soft_mul_normalization_is_bounded_by_one() {
        // The product of two normalized significands needs at most one
        // normalizing shift: multiplication is the predictable operation.
        for (a, b) in [(1.0f32, 1.0f32), (1.99, 1.99), (3.5, 7.25), (123.0, 0.0625)] {
            let r = soft_mul(a, b).unwrap();
            assert!(r.norm_iterations <= 1, "{a} * {b}: {}", r.norm_iterations);
        }
    }

    proptest! {
        /// Multiplication accuracy against hardware floats.
        #[test]
        fn prop_mul_accurate(a in -1.0e15f32..1.0e15, b in -1.0e15f32..1.0e15) {
            prop_assume!(a.abs() > 1e-15 && b.abs() > 1e-15);
            let expect = a * b;
            prop_assume!(expect.is_finite() && expect.abs() > 1e-30);
            if let Ok(r) = soft_mul(a, b) {
                prop_assert!(
                    close(r.value, expect) || (r.value - expect).abs() <= expect.abs() * 1e-5,
                    "{a} * {b}: soft {} vs hw {expect}", r.value
                );
                prop_assert!(r.norm_iterations <= 1);
            }
        }

        /// Accuracy against hardware floats over the normal range.
        #[test]
        fn prop_add_accurate(a in -1.0e20f32..1.0e20, b in -1.0e20f32..1.0e20) {
            prop_assume!(a != 0.0 && b != 0.0);
            prop_assume!(a.abs() > 1e-20 && b.abs() > 1e-20);
            let expect = a + b;
            prop_assume!(expect == 0.0 || expect.abs() > 1e-25);
            if let Ok(r) = soft_add(a, b) {
                // Allow 2 ulp-ish slack: the model rounds once.
                prop_assert!(
                    close(r.value, expect) || (r.value - expect).abs() <= expect.abs() * 1e-5,
                    "{a} + {b}: soft {} vs hw {expect}", r.value
                );
            }
        }

        /// The normalization loop is bounded by the significand width +
        /// guard bits.
        #[test]
        fn prop_norm_iterations_bounded(a in -1.0e20f32..1.0e20, b in -1.0e20f32..1.0e20) {
            prop_assume!(a.abs() > 1e-20 && b.abs() > 1e-20);
            if let Ok(r) = soft_add(a, b) {
                prop_assert!(r.norm_iterations <= 64);
            }
        }
    }
}
