//! `ldivmod`: 32/32-bit unsigned division by successive approximation.
//!
//! Models a compiler support routine for a CPU whose hardware divider only
//! handles 16-bit divisors (the HCS12X situation). For a divisor that fits
//! 16 bits the hardware path is exact. Otherwise the routine estimates the
//! quotient with the divisor *truncated to its top 16 bits and rounded up*
//! (so the estimate never overshoots), then repairs the remainder by
//! repeated subtraction — the "iteration computing successive
//! approximations" of the paper.
//!
//! The correction count is the instrumented quantity of Table 1: almost
//! always 1, but `quotient × (rounding gap / divisor)` in the worst case,
//! which reaches the hundreds for divisors barely above 2²⁰ — and there is
//! no simple closed form in terms of the inputs, exactly the
//! predictability problem the paper describes.

use std::fmt;

/// Division by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivByZero;

impl fmt::Display for DivByZero {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("division by zero")
    }
}

impl std::error::Error for DivByZero {}

/// Quotient, remainder, and the instrumented iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivResult {
    /// `n / d`.
    pub quotient: u32,
    /// `n % d`.
    pub remainder: u32,
    /// Correction-loop iterations executed (0 when `n < d` or the
    /// hardware path applied with an exact estimate).
    pub iterations: u32,
}

/// Computes `n / d` and `n % d` with the average-case-optimized
/// successive-approximation algorithm, counting correction iterations.
///
/// # Errors
///
/// Returns [`DivByZero`] when `d == 0`.
///
/// # Example
///
/// ```
/// use wcet_arith::ldivmod::ldivmod;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r = ldivmod(0xffd9_3580, 0x0107_d228)?;
/// assert_eq!(r.quotient, 0xffd9_3580 / 0x0107_d228);
/// assert_eq!(r.remainder, 0xffd9_3580 % 0x0107_d228);
/// # Ok(())
/// # }
/// ```
pub fn ldivmod(n: u32, d: u32) -> Result<DivResult, DivByZero> {
    if d == 0 {
        return Err(DivByZero);
    }
    if n < d {
        return Ok(DivResult {
            quotient: 0,
            remainder: n,
            iterations: 0,
        });
    }
    if d <= 0xffff {
        // The 16-bit hardware divider handles this exactly (two chained
        // 32/16 steps on the real part); one approximation iteration.
        return Ok(DivResult {
            quotient: n / d,
            remainder: n % d,
            iterations: 1,
        });
    }

    // Truncate the divisor to its top 16 bits, rounded up, so the
    // quotient estimate never overshoots; subtract one more to absorb the
    // truncation of the estimate division itself ("defensive" estimate —
    // an overshoot would need an expensive signed repair path).
    let est_d = u64::from((d >> 16) + 1) << 16;
    let mut q = (u64::from(n) / est_d).saturating_sub(1);
    let mut r = u64::from(n) - q * u64::from(d);

    let mut iterations = 0u32;
    while r >= u64::from(d) {
        r -= u64::from(d);
        q += 1;
        iterations += 1;
    }

    Ok(DivResult {
        quotient: q as u32,
        remainder: r as u32,
        iterations,
    })
}

/// An analytical upper bound on the correction iterations of [`ldivmod`]
/// for any dividend and any divisor `d ≥ d_min` (with `d_min > 2¹⁶ − 1`).
///
/// Derivation: iterations ≤ `n·gap/(d·est_d) + 2` with
/// `gap = est_d − d < 2¹⁶` and `est_d ≥ d ≥ d_min`, so
/// `iterations ≤ (2³² − 1)·2¹⁶ / d_min² + 2`.
///
/// This is the bound a *design-level annotation* supplies when the input
/// domain of the divisor is known (experiment E14): without it the
/// correction loop is input-data dependent and unbounded for the static
/// analysis.
///
/// # Panics
///
/// Panics if `d_min < 2¹⁶` (the hardware path needs no correction there).
#[must_use]
pub fn correction_bound(d_min: u32) -> u64 {
    assert!(d_min > 0xffff, "bound only applies to the software path");
    let dm = u64::from(d_min);
    u64::from(u32::MAX) * (1u64 << 16) / (dm * dm) + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn divide_by_zero_rejected() {
        assert_eq!(ldivmod(5, 0), Err(DivByZero));
    }

    #[test]
    fn small_cases() {
        assert_eq!(
            ldivmod(0, 3).unwrap(),
            DivResult {
                quotient: 0,
                remainder: 0,
                iterations: 0
            }
        );
        assert_eq!(
            ldivmod(2, 3).unwrap(),
            DivResult {
                quotient: 0,
                remainder: 2,
                iterations: 0
            }
        );
        let r = ldivmod(100, 7).unwrap();
        assert_eq!((r.quotient, r.remainder), (14, 2));
    }

    #[test]
    fn hardware_path_single_iteration() {
        let r = ldivmod(0xffff_ffff, 0xffff).unwrap();
        assert_eq!(r.iterations, 1);
        assert_eq!(r.quotient, 0xffff_ffff / 0xffff);
    }

    #[test]
    fn software_path_typically_one_iteration() {
        // Large divisor: the estimate is near-exact.
        let r = ldivmod(0xffff_ffff, 0x4000_0000).unwrap();
        assert!(r.iterations <= 2, "got {}", r.iterations);
        assert_eq!(r.quotient, 3);
    }

    #[test]
    fn pathological_divisor_has_long_tail() {
        // d barely above 2^20: the truncation gap is nearly maximal and
        // the quotient is large → hundreds of corrections.
        let r = ldivmod(0xffff_ffff, 0x0010_0001).unwrap();
        assert!(
            r.iterations > 100,
            "expected a pathological tail, got {}",
            r.iterations
        );
        assert!(u64::from(r.iterations) <= correction_bound(0x0010_0001));
    }

    #[test]
    fn correction_bound_is_monotone_in_dmin() {
        assert!(correction_bound(0x0010_0000) >= correction_bound(0x0100_0000));
        assert!(correction_bound(0x1000_0000) <= 4);
    }

    proptest! {
        /// Functional correctness against native division.
        #[test]
        fn prop_matches_native(n in any::<u32>(), d in 1u32..) {
            let r = ldivmod(n, d).unwrap();
            prop_assert_eq!(r.quotient, n / d);
            prop_assert_eq!(r.remainder, n % d);
        }

        /// The analytical correction bound holds on the software path.
        #[test]
        fn prop_bound_holds(n in any::<u32>(), d in 0x1_0000u32..) {
            let r = ldivmod(n, d).unwrap();
            prop_assert!(u64::from(r.iterations) <= correction_bound(d));
        }

        /// Reconstruction invariant: q·d + r == n and r < d.
        #[test]
        fn prop_reconstruction(n in any::<u32>(), d in 1u32..) {
            let r = ldivmod(n, d).unwrap();
            prop_assert!(r.remainder < d);
            let back = u64::from(r.quotient) * u64::from(d) + u64::from(r.remainder);
            prop_assert_eq!(back, u64::from(n));
        }
    }
}
