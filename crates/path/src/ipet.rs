//! The IPET encoding and WCET/BCET solves.
//!
//! Variables: one per CFG edge plus one virtual entry edge (count 1) and
//! one virtual exit edge per exit block; one count variable per block tied
//! to the sum of its in-edges. Constraints: flow conservation per block,
//! loop bounds (`count(header) ≤ bound · Σ entry-edge counts`), and the
//! user's flow facts. Objective: maximize (WCET) or minimize (BCET)
//! `Σ timeᵦ · countᵦ`.

#![allow(clippy::needless_range_loop)] // index-parallel arrays

use std::collections::BTreeMap;
use std::fmt;

use wcet_analysis::loopbound::{BoundResult, LoopBounds, UnboundedReason};
use wcet_cfg::block::{BlockId, Terminator};
use wcet_cfg::graph::Cfg;
use wcet_cfg::loops::LoopForest;
use wcet_ilp::{Model, Sense, SolveError, VarId};

pub use wcet_ilp::LpStats;
use wcet_isa::Addr;
use wcet_micro::blocktime::BlockTimes;

use crate::flowfacts::{FactOp, FlowFact};

/// Callee costs, added to blocks that call them (bottom-up
/// interprocedural composition).
///
/// Two addressing levels:
///
/// * **by callee** ([`CallCosts::insert`]) — one merged cost per callee
///   entry address, the classic context-insensitive pricing;
/// * **by call site** ([`CallCosts::insert_site`]) — a cost for one
///   specific call instruction. The context-sensitive pipeline prices
///   each site with the WCET of the *(callee, context)* pair the site
///   resolves to, so two calls to the same function can carry different
///   costs. Site costs take precedence over callee costs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallCosts {
    by_callee: BTreeMap<Addr, u64>,
    by_site: BTreeMap<Addr, u64>,
}

impl CallCosts {
    /// An empty cost table.
    #[must_use]
    pub fn new() -> CallCosts {
        CallCosts::default()
    }

    /// Sets the merged cost of `callee` (used by every call site without
    /// a site-specific cost).
    pub fn insert(&mut self, callee: Addr, cost: u64) {
        self.by_callee.insert(callee, cost);
    }

    /// The merged cost of `callee`, if set.
    #[must_use]
    pub fn get(&self, callee: &Addr) -> Option<&u64> {
        self.by_callee.get(callee)
    }

    /// Sets the cost charged at the call instruction `site`, overriding
    /// any per-callee cost there. For indirect calls the caller must
    /// pass the already-merged (max for WCET, min for BCET) cost over
    /// the site's possible callee contexts.
    pub fn insert_site(&mut self, site: Addr, cost: u64) {
        self.by_site.insert(site, cost);
    }

    /// The site-specific cost at `site`, if set.
    #[must_use]
    pub fn site(&self, site: Addr) -> Option<u64> {
        self.by_site.get(&site).copied()
    }
}

/// Why path analysis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PathError {
    /// A loop lacks a bound: no WCET exists. Carries the loops and the
    /// reasons the loop-bound analysis reported — the paper's tier-one
    /// diagnosis.
    UnboundedLoop {
        /// `(header address, reason)` for every unbounded loop.
        loops: Vec<(Addr, UnboundedReason)>,
    },
    /// A call target is unknown (unresolved function pointer): the call
    /// graph is incomplete and no bound can be claimed.
    UnresolvedCall {
        /// The offending call sites.
        sites: Vec<Addr>,
    },
    /// A callee's WCET was not supplied.
    MissingCallee {
        /// The callee entry address.
        callee: Addr,
    },
    /// The ILP failed (infeasible flow facts, solver limits).
    Solver(SolveError),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::UnboundedLoop { loops } => {
                write!(f, "unbounded loops prevent WCET computation:")?;
                for (addr, reason) in loops {
                    write!(f, " [{addr}: {reason}]")?;
                }
                Ok(())
            }
            PathError::UnresolvedCall { sites } => {
                write!(f, "unresolved indirect calls at {sites:?}")
            }
            PathError::MissingCallee { callee } => {
                write!(f, "no WCET available for callee {callee}")
            }
            PathError::Solver(e) => write!(f, "ILP solver: {e}"),
        }
    }
}

impl std::error::Error for PathError {}

impl From<SolveError> for PathError {
    fn from(e: SolveError) -> Self {
        PathError::Solver(e)
    }
}

/// The result of a WCET (or BCET) path analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetResult {
    /// The computed bound in cycles.
    pub wcet_cycles: u64,
    /// Execution count of every block on the extremal path.
    pub block_counts: BTreeMap<BlockId, u64>,
    /// A concrete witness path (block sequence), reconstructed from the
    /// counts; truncated at [`crate::extract::MAX_PATH_LEN`] blocks.
    pub worst_path: Vec<BlockId>,
}

impl WcetResult {
    /// The execution count of `b` on the extremal path.
    #[must_use]
    pub fn count(&self, b: BlockId) -> u64 {
        self.block_counts.get(&b).copied().unwrap_or(0)
    }
}

/// Computes the WCET bound of the analyzed function.
///
/// Takes the CFG and loop forest the timing phase analyzed (for virtual
/// unrolling, the *peeled* pair) rather than a full `FunctionAnalysis`:
/// the path phase never needs abstract states, and the incremental engine
/// rebuilds exactly these two structures when replaying cached artifacts.
///
/// # Errors
///
/// See [`PathError`].
pub fn wcet(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
) -> Result<WcetResult, PathError> {
    wcet_with_stats(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        &mut LpStats::default(),
    )
}

/// [`wcet`], accumulating solver effort counters into `stats`.
///
/// # Errors
///
/// See [`PathError`].
#[allow(clippy::too_many_arguments)] // the stats sink rides along
pub fn wcet_with_stats(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
    stats: &mut LpStats,
) -> Result<WcetResult, PathError> {
    wcet_full(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        &BTreeMap::new(),
        stats,
    )
}

/// [`wcet_with_stats`] with per-edge cycle penalties added to the
/// objective (the pipeline analysis' static branch-misprediction
/// charges: traversing a penalized edge costs its penalty times the
/// edge's flow).
///
/// # Errors
///
/// See [`PathError`].
#[allow(clippy::too_many_arguments)] // the stats sink rides along
pub fn wcet_full(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
    edge_penalties: &BTreeMap<(BlockId, BlockId), u64>,
    stats: &mut LpStats,
) -> Result<WcetResult, PathError> {
    solve(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        edge_penalties,
        Sense::Maximize,
        stats,
    )
}

/// Computes the BCET bound of the analyzed function (same system,
/// minimized, with best-case block times).
///
/// # Errors
///
/// See [`PathError`].
pub fn bcet(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
) -> Result<WcetResult, PathError> {
    bcet_with_stats(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        &mut LpStats::default(),
    )
}

/// [`bcet`], accumulating solver effort counters into `stats`.
///
/// # Errors
///
/// See [`PathError`].
#[allow(clippy::too_many_arguments)] // the stats sink rides along
pub fn bcet_with_stats(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
    stats: &mut LpStats,
) -> Result<WcetResult, PathError> {
    bcet_full(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        &BTreeMap::new(),
        stats,
    )
}

/// [`bcet_with_stats`] with per-edge cycle penalties; see [`wcet_full`].
/// The minimizing sense charges them too — the BTFNT predictor is
/// deterministic, so a mispredicted edge *always* pays its penalty and
/// the lower bound stays exact.
///
/// # Errors
///
/// See [`PathError`].
#[allow(clippy::too_many_arguments)] // the stats sink rides along
pub fn bcet_full(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
    edge_penalties: &BTreeMap<(BlockId, BlockId), u64>,
    stats: &mut LpStats,
) -> Result<WcetResult, PathError> {
    solve(
        cfg,
        forest,
        times,
        bounds,
        facts,
        call_costs,
        edge_penalties,
        Sense::Minimize,
        stats,
    )
}

#[allow(clippy::too_many_arguments)] // one IPET system, fully spelled out
fn solve(
    cfg: &Cfg,
    forest: &LoopForest,
    times: &BlockTimes,
    bounds: &LoopBounds,
    facts: &[FlowFact],
    call_costs: &CallCosts,
    edge_penalties: &BTreeMap<(BlockId, BlockId), u64>,
    sense: Sense,
    stats: &mut LpStats,
) -> Result<WcetResult, PathError> {
    // Precondition 1: no unresolved calls (unknown callees void any bound).
    if !cfg.unresolved.is_empty() {
        return Err(PathError::UnresolvedCall {
            sites: cfg.unresolved.clone(),
        });
    }

    // Precondition 2: every *reachable* loop is bounded.
    let mut unbounded = Vec::new();
    for (id, result) in bounds.results() {
        if let BoundResult::Unbounded { reason } = result {
            let header = forest.info(*id).header;
            unbounded.push((cfg.block(header).start, *reason));
        }
    }
    if !unbounded.is_empty() {
        return Err(PathError::UnboundedLoop { loops: unbounded });
    }

    let n = cfg.block_count();
    let mut model = Model::new(sense);

    // Edge variables.
    let edges = cfg.edges();
    let edge_vars: Vec<VarId> = edges
        .iter()
        .map(|(u, v)| model.add_int_var(&format!("e_{}_{}", u.0, v.0), 0, None))
        .collect();
    // Virtual entry (fixed to 1) and exits.
    let entry_var = model.add_int_var("entry", 1, Some(1));
    let exit_blocks = cfg.exit_blocks();
    let exit_vars: BTreeMap<BlockId, VarId> = exit_blocks
        .iter()
        .map(|&b| (b, model.add_int_var(&format!("exit_{}", b.0), 0, None)))
        .collect();

    // Block count variables.
    let block_vars: Vec<VarId> = (0..n)
        .map(|i| model.add_int_var(&format!("b_{i}"), 0, None))
        .collect();

    // count(b) = Σ in-edges (+ virtual entry).
    for b in 0..n {
        let mut terms: Vec<(VarId, f64)> = vec![(block_vars[b], -1.0)];
        for (k, (_, v)) in edges.iter().enumerate() {
            if v.0 == b {
                terms.push((edge_vars[k], 1.0));
            }
        }
        if BlockId(b) == cfg.entry_block() {
            terms.push((entry_var, 1.0));
        }
        model.add_eq(&terms, 0.0);
    }

    // count(b) = Σ out-edges (+ virtual exit).
    for b in 0..n {
        let mut terms: Vec<(VarId, f64)> = vec![(block_vars[b], -1.0)];
        for (k, (u, _)) in edges.iter().enumerate() {
            if u.0 == b {
                terms.push((edge_vars[k], 1.0));
            }
        }
        if let Some(&xv) = exit_vars.get(&BlockId(b)) {
            terms.push((xv, 1.0));
        }
        model.add_eq(&terms, 0.0);
    }

    // Loop bounds: count(header) ≤ bound · Σ entry-edges(from outside).
    for (id, result) in bounds.results() {
        let BoundResult::Bounded { max_iterations, .. } = result else {
            continue; // already rejected above
        };
        let info = forest.info(*id);
        let header = info.header;
        let mut terms: Vec<(VarId, f64)> = vec![(block_vars[header.0], 1.0)];
        let bound = *max_iterations as f64;
        for (k, (u, v)) in edges.iter().enumerate() {
            if *v == header && !info.blocks.contains(u) {
                terms.push((edge_vars[k], -bound));
            }
        }
        if header == cfg.entry_block() {
            terms.push((entry_var, -bound));
        }
        model.add_le(&terms, 0.0);
    }

    // Flow facts.
    for fact in facts {
        let terms: Vec<(VarId, f64)> = fact
            .terms
            .iter()
            .map(|(b, c)| (block_vars[b.0], *c))
            .collect();
        match fact.op {
            FactOp::Le => model.add_le(&terms, fact.rhs),
            FactOp::Ge => model.add_ge(&terms, fact.rhs),
            FactOp::Eq => model.add_eq(&terms, fact.rhs),
        }
    }

    // Objective: Σ time(b) · count(b), plus callee costs on call blocks.
    let mut objective: Vec<(VarId, f64)> = Vec::with_capacity(n);
    for b in 0..n {
        let base = match sense {
            Sense::Maximize => times.wcet(BlockId(b)),
            Sense::Minimize => times.bcet(BlockId(b)),
        };
        let block = cfg.block(BlockId(b));
        let call_site = block.site_addr();
        let call_cost: u64 = match &block.term {
            Terminator::Call { callee, .. } => match call_costs.site(call_site) {
                Some(cost) => cost,
                None => *call_costs
                    .get(callee)
                    .ok_or(PathError::MissingCallee { callee: *callee })?,
            },
            Terminator::CallInd { callees, .. } if !callees.is_empty() => {
                match call_costs.site(call_site) {
                    // Already merged over the site's callee contexts.
                    Some(cost) => cost,
                    None => {
                        let per: Result<Vec<u64>, PathError> = callees
                            .iter()
                            .map(|c| {
                                call_costs
                                    .get(c)
                                    .copied()
                                    .ok_or(PathError::MissingCallee { callee: *c })
                            })
                            .collect();
                        let per = per?;
                        match sense {
                            Sense::Maximize => per.into_iter().max().unwrap_or(0),
                            Sense::Minimize => per.into_iter().min().unwrap_or(0),
                        }
                    }
                }
            }
            _ => 0,
        };
        objective.push((block_vars[b], (base + call_cost) as f64));
    }

    // Per-edge penalties (static branch-misprediction charges): each
    // traversal of a penalized edge costs its penalty, in both senses —
    // the BTFNT predictor is deterministic, so the charge is exact.
    if !edge_penalties.is_empty() {
        for (k, edge) in edges.iter().enumerate() {
            if let Some(&p) = edge_penalties.get(edge) {
                objective.push((edge_vars[k], p as f64));
            }
        }
    }

    // First-miss (persistence) penalties: an access classified FirstMiss
    // costs the hit latency per execution (already in the block time)
    // plus its miss penalty **at most once per activation**. Encoded as
    // one extra 0/1 variable per penalized block, bounded by the block's
    // execution count; maximization drives it to 1 exactly when the
    // block executes at all — one miss per activation instead of one per
    // iteration. Minimization would drive the variable to 0 (a warm
    // entry cache can serve every execution), so the BCET system skips
    // the variables entirely.
    if matches!(sense, Sense::Maximize) {
        for b in 0..n {
            let penalty = times.first_miss(BlockId(b));
            if penalty == 0 {
                continue;
            }
            let fm = model.add_int_var(&format!("fm_{b}"), 0, Some(1));
            model.add_le(&[(fm, 1.0), (block_vars[b], -1.0)], 0.0);
            objective.push((fm, penalty as f64));
        }
    }
    model.set_objective(&objective);

    let solution = model.solve_with_stats(stats)?;

    let block_counts: BTreeMap<BlockId, u64> = (0..n)
        .map(|b| (BlockId(b), solution.int_value(block_vars[b]).max(0) as u64))
        .collect();
    let edge_counts: BTreeMap<(BlockId, BlockId), u64> = edges
        .iter()
        .enumerate()
        .map(|(k, &(u, v))| ((u, v), solution.int_value(edge_vars[k]).max(0) as u64))
        .collect();
    let worst_path = crate::extract::extract_path(cfg, &edge_counts);

    Ok(WcetResult {
        wcet_cycles: solution.objective.round().max(0.0) as u64,
        block_counts,
        worst_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;
    use wcet_isa::interp::{Interpreter, MachineConfig};

    fn setup(src: &str) -> (wcet_isa::Image, wcet_analysis::FunctionAnalysis, BlockTimes) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let times = BlockTimes::compute(&fa, &MachineConfig::simple());
        (image, fa, times)
    }

    fn wcet_of(src: &str) -> (u64, u64) {
        // Returns (bound, observed).
        let (image, fa, times) = setup(src);
        let result = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let outcome = interp.run(1_000_000).unwrap();
        (result.wcet_cycles, outcome.cycles)
    }

    #[test]
    fn edge_penalties_charge_per_traversal() {
        // A 4-iteration loop: the back edge is taken 3 times, the exit
        // edge once. Penalizing each adds penalty × flow to the bound.
        let src = "main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let (_, fa, times) = setup(src);
        let cfg = fa.cfg();
        let bounds = fa.loop_bounds();
        let plain = wcet(cfg, fa.forest(), &times, &bounds, &[], &CallCosts::new())
            .unwrap()
            .wcet_cycles;
        let branch_block = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::CondBranch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let back_edge = (branch_block, branch_block);
        let exit_edge = cfg
            .edges()
            .into_iter()
            .find(|&(u, v)| u == branch_block && v != branch_block)
            .unwrap();
        for (edge, traversals) in [(back_edge, 3), (exit_edge, 1)] {
            let penalties = BTreeMap::from([(edge, 10u64)]);
            let with = wcet_full(
                cfg,
                fa.forest(),
                &times,
                &bounds,
                &[],
                &CallCosts::new(),
                &penalties,
                &mut LpStats::default(),
            )
            .unwrap()
            .wcet_cycles;
            assert_eq!(with, plain + 10 * traversals, "edge {edge:?}");
        }
        // The minimizing sense charges the penalty too; the shortest
        // path exits after one header visit, traversing the exit edge
        // exactly once (and the back edge never — its penalty is free).
        let b_plain = bcet(cfg, fa.forest(), &times, &bounds, &[], &CallCosts::new())
            .unwrap()
            .wcet_cycles;
        for (edge, traversals) in [(back_edge, 0), (exit_edge, 1)] {
            let penalties = BTreeMap::from([(edge, 10u64)]);
            let b_with = bcet_full(
                cfg,
                fa.forest(),
                &times,
                &bounds,
                &[],
                &CallCosts::new(),
                &penalties,
                &mut LpStats::default(),
            )
            .unwrap()
            .wcet_cycles;
            assert_eq!(b_with, b_plain + 10 * traversals, "edge {edge:?}");
        }
    }

    #[test]
    fn straight_line_sound_and_tight() {
        let (bound, observed) = wcet_of("main: li r1, 1\n addi r1, r1, 2\n halt");
        assert!(bound >= observed, "soundness: {bound} >= {observed}");
        assert_eq!(bound, observed, "no over-approximation on straight line");
    }

    #[test]
    fn counter_loop_bound_covers_observed() {
        let (bound, observed) =
            wcet_of("main: li r1, 10\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert!(bound >= observed, "{bound} >= {observed}");
        // The bound should be within the loop-overhead slack (exit branch
        // charged as taken), not wildly above.
        assert!(bound <= observed + 10, "{bound} ≤ {observed} + slack");
    }

    #[test]
    fn branchy_program_takes_longer_arm() {
        // The worst path must include the expensive arm (the multiply).
        let (_, fa, times) = setup(
            r#"
            main: beq r4, r0, cheap
                  mul r1, r2, r3
                  mul r1, r2, r3
                  j done
            cheap: addi r1, r0, 1
            done: halt
            "#,
        );
        let result = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        let expensive = fa
            .cfg()
            .iter()
            .find(|(_, b)| {
                b.insts
                    .iter()
                    .filter(|(_, i)| matches!(i, wcet_isa::Inst::Alu { .. }))
                    .count()
                    == 2
            })
            .unwrap()
            .0;
        assert_eq!(result.count(expensive), 1, "worst path takes the mul arm");
    }

    #[test]
    fn unbounded_loop_is_an_error_with_reason() {
        let (_, fa, times) =
            setup("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let err = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap_err();
        match err {
            PathError::UnboundedLoop { loops } => {
                assert_eq!(loops.len(), 1);
                assert_eq!(loops[0].1, UnboundedReason::DataDependent);
            }
            other => panic!("expected UnboundedLoop, got {other:?}"),
        }
    }

    #[test]
    fn annotation_unblocks_unbounded_loop() {
        let (image, fa, times) =
            setup("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let mut bounds = fa.loop_bounds();
        let id = bounds.results()[0].0;
        bounds.apply_annotation(id, 20);
        let result = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &bounds,
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        // Observed with r4 = 20 must stay below the bound.
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        interp.set_reg(wcet_isa::Reg::new(4), 20);
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(result.wcet_cycles >= observed);
    }

    #[test]
    fn exclusion_fact_tightens_bound() {
        let (_, fa, times) = setup(
            r#"
            main: beq r4, r0, cheap
                  mul r1, r2, r3
                  mul r1, r2, r3
                  mul r1, r2, r3
                  j done
            cheap: addi r1, r0, 1
            done: halt
            "#,
        );
        let plain = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        let expensive = fa.cfg().iter().find(|(_, b)| b.insts.len() == 4).unwrap().0;
        let fact = FlowFact::exclude(expensive, "mode: expensive arm infeasible");
        let constrained = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[fact],
            &CallCosts::new(),
        )
        .unwrap();
        assert!(constrained.wcet_cycles < plain.wcet_cycles);
    }

    #[test]
    fn unresolved_call_is_an_error() {
        let (_, fa, times) = setup("main: callr r4\n halt");
        let err = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap_err();
        assert!(matches!(err, PathError::UnresolvedCall { .. }));
    }

    #[test]
    fn call_costs_added() {
        let src = "main: call f\n halt\nf: ret";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let f_entry = image.symbol("f").unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let times = BlockTimes::compute(&fa, &MachineConfig::simple());

        let mut costs = CallCosts::new();
        costs.insert(f_entry, 0);
        let base = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &costs,
        )
        .unwrap();
        costs.insert(f_entry, 100);
        let with_callee = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &costs,
        )
        .unwrap();
        assert_eq!(with_callee.wcet_cycles, base.wcet_cycles + 100);

        let missing = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        );
        assert!(matches!(missing, Err(PathError::MissingCallee { .. })));
    }

    #[test]
    fn site_costs_override_callee_costs() {
        // Two calls to the same callee priced differently per site: the
        // WCET charges each site its own context cost, not twice the
        // merged worst case.
        let src = "main: call f\n call f\n halt\nf: ret";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let f_entry = image.symbol("f").unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let times = BlockTimes::compute(&fa, &MachineConfig::simple());

        let mut merged = CallCosts::new();
        merged.insert(f_entry, 100);
        let both_merged = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &merged,
        )
        .unwrap();

        let sites = fa.cfg().call_sites();
        assert_eq!(sites.len(), 2);
        let mut per_site = CallCosts::new();
        per_site.insert(f_entry, 100); // fallback, shadowed below
        per_site.insert_site(sites[0].0, 10);
        per_site.insert_site(sites[1].0, 100);
        let contexted = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &per_site,
        )
        .unwrap();
        assert_eq!(
            both_merged.wcet_cycles - contexted.wcet_cycles,
            90,
            "the cheap site saves exactly its context delta"
        );
        assert_eq!(per_site.site(sites[0].0), Some(10));
        assert_eq!(per_site.get(&f_entry), Some(&100));
    }

    #[test]
    fn first_miss_penalty_charged_once_per_activation() {
        // A 10-iteration loop whose body carries a first-miss penalty of
        // 40 cycles: the WCET charges the penalty once — not per
        // iteration — and the BCET ignores it entirely.
        let (_, fa, times) =
            setup("main: li r1, 10\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let cfg = fa.cfg();
        let loop_block = cfg.block_at(fa.entry.offset(4)).unwrap();
        let n = cfg.block_count();
        let raw_w: Vec<u64> = (0..n).map(|b| times.wcet(BlockId(b))).collect();
        let raw_b: Vec<u64> = (0..n).map(|b| times.bcet(BlockId(b))).collect();
        let mut fm = vec![0u64; n];
        fm[loop_block.0] = 40;
        let with_fm =
            BlockTimes::from_raw_with_first_miss(raw_w.clone(), raw_b.clone(), fm).unwrap();
        let plain = BlockTimes::from_raw(raw_w, raw_b).unwrap();

        let solve_w = |t: &BlockTimes| {
            wcet(
                cfg,
                fa.forest(),
                t,
                &fa.loop_bounds(),
                &[],
                &CallCosts::new(),
            )
            .unwrap()
            .wcet_cycles
        };
        let solve_b = |t: &BlockTimes| {
            bcet(
                cfg,
                fa.forest(),
                t,
                &fa.loop_bounds(),
                &[],
                &CallCosts::new(),
            )
            .unwrap()
            .wcet_cycles
        };
        assert_eq!(
            solve_w(&with_fm),
            solve_w(&plain) + 40,
            "exactly one activation-scoped penalty"
        );
        assert_eq!(solve_b(&with_fm), solve_b(&plain), "BCET never charges it");
    }

    #[test]
    fn first_miss_penalty_skipped_when_block_does_not_execute() {
        // The penalized block sits on the cheap arm the WCET path avoids
        // (the penalty is too small to make that arm worth taking): the
        // fm variable is capped by the block count (0), so the penalty
        // must not leak into the bound.
        let (_, fa, times) = setup(
            r#"
            main: beq r4, r0, cheap
                  mul r1, r2, r3
                  mul r1, r2, r3
                  mul r1, r2, r3
                  j done
            cheap: addi r1, r0, 1
            done: halt
            "#,
        );
        let cfg = fa.cfg();
        // The cheap arm starts at main+20 (beq, three muls, j precede it).
        let cheap = cfg.block_at(fa.entry.offset(20)).unwrap();
        let n = cfg.block_count();
        let raw_w: Vec<u64> = (0..n).map(|b| times.wcet(BlockId(b))).collect();
        let raw_b: Vec<u64> = (0..n).map(|b| times.bcet(BlockId(b))).collect();
        let mut fm = vec![0u64; n];
        fm[cheap.0] = 1;
        let with_fm = BlockTimes::from_raw_with_first_miss(raw_w, raw_b, fm).unwrap();
        let result = wcet(
            cfg,
            fa.forest(),
            &with_fm,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        assert_eq!(result.count(cheap), 0, "worst path avoids the cheap arm");
        let plain = wcet(
            cfg,
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        assert_eq!(
            result.wcet_cycles, plain.wcet_cycles,
            "an unexecuted block's first-miss penalty is not charged"
        );
    }

    #[test]
    fn bcet_below_wcet() {
        let (_, fa, times) =
            setup("main: beq r4, r0, cheap\n mul r1, r2, r3\n j done\ncheap: nop\ndone: halt");
        let hi = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        let lo = bcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        assert!(lo.wcet_cycles < hi.wcet_cycles);
    }

    #[test]
    fn ge_flow_fact_forces_minimum_visits() {
        // A Ge fact can force the BCET path through otherwise-skippable
        // work (e.g. "the calibration block runs at least twice").
        let (_, fa, times) =
            setup("main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let loop_block = fa.cfg().block_at(fa.entry.offset(4)).unwrap();
        let fact = FlowFact::linear(
            vec![(loop_block, 1.0)],
            crate::flowfacts::FactOp::Ge,
            2.0,
            "calibration runs at least twice",
        );
        let lo_plain = bcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        let lo_forced = bcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[fact],
            &CallCosts::new(),
        )
        .unwrap();
        assert!(lo_forced.wcet_cycles >= lo_plain.wcet_cycles);
        assert!(lo_forced.count(loop_block) >= 2);
    }

    #[test]
    fn mutex_capacity_above_one() {
        // Two blocks inside a bounded loop share a per-activation budget
        // larger than one.
        let (_, fa, times) = setup(
            r#"
            main: li r1, 6
            head: beq r1, r0, done
                  beq r4, r0, b_arm
            a_arm: mul r2, r2, r2
                  j next
            b_arm: mul r3, r3, r3
                  mul r3, r3, r3
            next: subi r1, r1, 1
                  j head
            done: halt
            "#,
        );
        let a_arm = fa.cfg().block_at(fa.entry.offset(12)).unwrap();
        let b_arm = fa.cfg().block_at(fa.entry.offset(20)).unwrap();
        let plain = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        // Budget: the two arms together may run at most 3 of the 6 times…
        let fact = FlowFact::mutually_exclusive(a_arm, b_arm, 3, "arm budget");
        let tight = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[fact],
            &CallCosts::new(),
        )
        .unwrap();
        assert!(tight.wcet_cycles < plain.wcet_cycles);
        assert!(tight.count(a_arm) + tight.count(b_arm) <= 3);
    }

    #[test]
    fn infeasible_facts_reported_as_solver_error() {
        let (_, fa, times) = setup("main: li r1, 1\n halt");
        let entry = fa.cfg().entry_block();
        // The entry must execute exactly once, so forbidding it is
        // infeasible.
        let fact = FlowFact::exclude(entry, "contradiction");
        let err = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[fact],
            &CallCosts::new(),
        )
        .unwrap_err();
        assert!(matches!(err, PathError::Solver(_)));
    }

    #[test]
    fn worst_path_is_a_real_path() {
        let (_, fa, times) =
            setup("main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let result = wcet(
            fa.cfg(),
            fa.forest(),
            &times,
            &fa.loop_bounds(),
            &[],
            &CallCosts::new(),
        )
        .unwrap();
        assert_eq!(result.worst_path.first(), Some(&fa.cfg().entry_block()));
        // The path visits the loop block `bound` times.
        let loop_block = fa.cfg().block_at(fa.entry.offset(4)).unwrap();
        let visits = result
            .worst_path
            .iter()
            .filter(|&&b| b == loop_block)
            .count() as u64;
        assert_eq!(visits, result.count(loop_block));
    }
}
