//! Worst-case path extraction from IPET edge counts.
//!
//! The ILP solution assigns every edge an execution count satisfying flow
//! conservation; a concrete witness path is an Euler-style walk that
//! consumes those counts. The path is what an engineer inspects to see
//! *where* the worst case lives (and what the examples print).

use std::collections::BTreeMap;

use wcet_cfg::block::BlockId;
use wcet_cfg::graph::Cfg;

/// Safety cap on the reconstructed path length.
pub const MAX_PATH_LEN: usize = 100_000;

/// Walks the CFG from the entry, consuming edge counts, and returns the
/// visited block sequence. When several out-edges still have budget, back
/// edges (toward already-visited loop headers) are preferred so loop
/// iterations are consumed before the loop is left — this keeps the walk
/// from stranding flow.
#[must_use]
pub fn extract_path(cfg: &Cfg, edge_counts: &BTreeMap<(BlockId, BlockId), u64>) -> Vec<BlockId> {
    let mut remaining = edge_counts.clone();
    let mut path = vec![cfg.entry_block()];
    let mut current = cfg.entry_block();

    for _ in 0..MAX_PATH_LEN {
        // Candidate out-edges with budget left.
        let mut candidates: Vec<(BlockId, u64)> = cfg.succs[current.0]
            .iter()
            .filter_map(|&s| {
                let c = remaining.get(&(current, s)).copied().unwrap_or(0);
                (c > 0).then_some((s, c))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Prefer the successor with the larger remaining count: this
        // drains loop back edges before exit edges.
        candidates.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
        let (next, _) = candidates[0];
        *remaining
            .get_mut(&(current, next))
            .expect("candidate exists") -= 1;
        path.push(next);
        current = next;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    #[test]
    fn straight_line_path() {
        let image = assemble("main: nop\n beq r1, r0, x\n nop\nx: halt").unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg();
        // Take the taken edge once.
        let entry = cfg.entry_block();
        let x = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, wcet_cfg::block::Terminator::Halt))
            .unwrap()
            .0;
        let mut counts = BTreeMap::new();
        counts.insert((entry, x), 1u64);
        let path = extract_path(cfg, &counts);
        assert_eq!(path, vec![entry, x]);
    }

    #[test]
    fn loop_path_consumes_back_edges() {
        let image =
            assemble("main: li r1, 3\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg();
        let entry = cfg.entry_block();
        let lp = cfg.block_at(p.entry.offset(4)).unwrap();
        let exit = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, wcet_cfg::block::Terminator::Halt))
            .unwrap()
            .0;
        let mut counts = BTreeMap::new();
        counts.insert((entry, lp), 1u64);
        counts.insert((lp, lp), 2u64); // two back-edge traversals
        counts.insert((lp, exit), 1u64);
        let path = extract_path(cfg, &counts);
        assert_eq!(path, vec![entry, lp, lp, lp, exit]);
    }

    #[test]
    fn zero_counts_stop_immediately() {
        let image = assemble("main: halt").unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let path = extract_path(p.entry_cfg(), &BTreeMap::new());
        assert_eq!(path.len(), 1);
    }
}
