//! Flow facts: design-level linear constraints on execution counts.
//!
//! The paper's Section 4.3 argues that tier-two precision requires
//! knowledge "available from the design-level phase": operating modes
//! excluding code regions, mutually exclusive read/write paths in message
//! handlers, bounded error counts. All of these are linear constraints
//! over block execution counts, which is exactly what IPET can consume.

use wcet_cfg::block::BlockId;

/// Comparison operator of a flow fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactOp {
    /// `Σ terms ≤ rhs`
    Le,
    /// `Σ terms ≥ rhs`
    Ge,
    /// `Σ terms = rhs`
    Eq,
}

/// A linear constraint `Σ coeffᵢ · count(blockᵢ)  op  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowFact {
    /// Weighted block-count terms.
    pub terms: Vec<(BlockId, f64)>,
    /// Comparison operator.
    pub op: FactOp,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Human-readable provenance (shown in reports).
    pub why: String,
}

impl FlowFact {
    /// The block never executes — e.g. it belongs to a different
    /// operating mode, or it is an error path excluded from the analysis.
    #[must_use]
    pub fn exclude(block: BlockId, why: &str) -> FlowFact {
        FlowFact {
            terms: vec![(block, 1.0)],
            op: FactOp::Eq,
            rhs: 0.0,
            why: why.to_owned(),
        }
    }

    /// The block executes at most `k` times — e.g. "at most k errors per
    /// activation" (Section 4.3, error handling).
    #[must_use]
    pub fn max_count(block: BlockId, k: u64, why: &str) -> FlowFact {
        FlowFact {
            terms: vec![(block, 1.0)],
            op: FactOp::Le,
            rhs: k as f64,
            why: why.to_owned(),
        }
    }

    /// Two blocks are mutually exclusive within one activation: their
    /// combined count cannot exceed `capacity` (1 for straight-line code;
    /// the loop bound if they sit inside a loop). This encodes the
    /// message-handler read/write exclusion of Section 4.3.
    #[must_use]
    pub fn mutually_exclusive(a: BlockId, b: BlockId, capacity: u64, why: &str) -> FlowFact {
        FlowFact {
            terms: vec![(a, 1.0), (b, 1.0)],
            op: FactOp::Le,
            rhs: capacity as f64,
            why: why.to_owned(),
        }
    }

    /// A general linear fact.
    #[must_use]
    pub fn linear(terms: Vec<(BlockId, f64)>, op: FactOp, rhs: f64, why: &str) -> FlowFact {
        FlowFact {
            terms,
            op,
            rhs,
            why: why.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = FlowFact::exclude(BlockId(3), "air mode");
        assert_eq!(f.op, FactOp::Eq);
        assert_eq!(f.rhs, 0.0);

        let f = FlowFact::max_count(BlockId(1), 2, "max 2 errors");
        assert_eq!(f.op, FactOp::Le);
        assert_eq!(f.rhs, 2.0);

        let f = FlowFact::mutually_exclusive(BlockId(1), BlockId(2), 1, "rx xor tx");
        assert_eq!(f.terms.len(), 2);
    }
}
