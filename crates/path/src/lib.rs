//! # wcet-path — IPET path analysis
//!
//! The final phase of the paper's Figure 1: given per-block execution-time
//! bounds (from `wcet-micro`) and loop bounds (from `wcet-analysis` or
//! annotations), computes the worst-case execution path and the WCET bound
//! by *implicit path enumeration* (IPET): execution counts of blocks and
//! edges become ILP variables, structural flow conservation and loop
//! bounds become constraints, and the WCET is the maximum of
//! `Σ timeᵦ · countᵦ`.
//!
//! Design-level knowledge (Section 4.3 of the paper) enters as
//! [`flowfacts::FlowFact`] linear constraints: operating-mode exclusions,
//! mutual exclusion of read/write paths in a message handler, maximum
//! error counts, infeasible-path pairs.
//!
//! # Example
//!
//! ```
//! use wcet_isa::asm::assemble;
//! use wcet_isa::interp::MachineConfig;
//! use wcet_cfg::graph::{reconstruct, TargetResolver};
//! use wcet_analysis::analyze_function;
//! use wcet_micro::blocktime::BlockTimes;
//! use wcet_path::ipet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "main: li r1, 10\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
//! )?;
//! let p = reconstruct(&image, &TargetResolver::empty())?;
//! let fa = analyze_function(&p, p.entry, &image);
//! let times = BlockTimes::compute(&fa, &MachineConfig::simple());
//! let result = ipet::wcet(
//!     fa.cfg(),
//!     fa.forest(),
//!     &times,
//!     &fa.loop_bounds(),
//!     &[],
//!     &ipet::CallCosts::new(),
//! )?;
//! assert!(result.wcet_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod extract;
pub mod flowfacts;
pub mod ipet;

pub use flowfacts::FlowFact;
pub use ipet::{bcet, wcet, PathError, WcetResult};
