//! The abstract-interpretation value analysis (fixpoint engine).
//!
//! Per function, a worklist fixpoint over the CFG computes an
//! [`AbstractState`] at every block boundary, with widening at loop
//! headers (delayed by [`AnalysisConfig::widen_delay`] iterations) and a
//! decreasing narrowing pass afterwards. Branch conditions refine the
//! states along their out-edges, which is what turns counter tests into
//! loop bounds downstream.
//!
//! Calls are handled through per-function *summaries* (does the callee
//! write memory?) and the calling convention (`r1`–`r9` caller-saved) —
//! precise enough for the paper's experiments while staying sound.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use wcet_cfg::block::{BlockId, Terminator};
use wcet_cfg::dom::Dominators;
use wcet_cfg::graph::{Cfg, Program};
use wcet_cfg::loops::LoopForest;
use wcet_isa::{Addr, AluOp, Cond, Image, Inst, Reg, Width};

use crate::interval::Interval;
use crate::state::AbstractState;
use crate::value::Value;

/// Tuning knobs for the fixpoint engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Widening kicks in after this many visits of a loop header.
    pub widen_delay: usize,
    /// Number of decreasing (narrowing) passes after stabilization.
    pub narrow_passes: usize,
    /// Address range `[lo, hi)` returned by `alloc` (the heap region), if
    /// known. `None` means allocation results are completely unknown.
    pub heap_range: Option<(u32, u32)>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            widen_delay: 3,
            narrow_passes: 2,
            heap_range: Some((0x2000_0000, 0x2010_0000)),
        }
    }
}

/// What a call to a function may do to the caller's memory knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunctionSummary {
    /// True if the function (transitively) may write data memory.
    pub writes_mem: bool,
}

/// Results of analyzing one function.
#[derive(Debug, Clone)]
pub struct FunctionAnalysis {
    /// The analyzed function's entry address.
    pub entry: Addr,
    cfg: Cfg,
    dom: Dominators,
    forest: LoopForest,
    block_in: Vec<Option<AbstractState>>,
    block_out: Vec<Option<AbstractState>>,
    config: AnalysisConfig,
    summaries: Arc<HashMap<Addr, FunctionSummary>>,
}

/// Analyzes the function entered at `entry` with an all-unknown register
/// state and the image's data segments as initial memory.
///
/// # Panics
///
/// Panics if `entry` is not a function of `program`.
#[must_use]
pub fn analyze_function(program: &Program, entry: Addr, image: &Image) -> FunctionAnalysis {
    analyze_function_with(program, entry, image, &AnalysisConfig::default())
}

/// [`analyze_function`] with explicit configuration.
///
/// # Panics
///
/// Panics if `entry` is not a function of `program`.
#[must_use]
pub fn analyze_function_with(
    program: &Program,
    entry: Addr,
    image: &Image,
    config: &AnalysisConfig,
) -> FunctionAnalysis {
    let cfg = program
        .cfg(entry)
        .unwrap_or_else(|| panic!("function {entry} not reconstructed"))
        .clone();
    let summaries = Arc::new(compute_summaries(program));

    // Load-time memory: the image's initialized data.
    let entry_state = entry_state_from_image(image);
    analyze_cfg(cfg, entry, entry_state, config.clone(), summaries)
}

/// The load-time abstract memory: every initialized data word of the
/// image becomes a known memory fact.
#[must_use]
pub fn entry_state_from_image(image: &Image) -> AbstractState {
    let mut entry_state = AbstractState::all_unknown();
    for seg in &image.data {
        let mut addr = seg.base;
        while addr.0 + 4 <= seg.end().0 {
            if let Some(w) = seg.word_at(addr) {
                entry_state.set_mem_word(addr.0, Value::constant(w));
            }
            addr = addr.next();
        }
    }
    entry_state
}

/// Runs the fixpoint on an explicit CFG and entry state. Used by the
/// virtual-unrolling pipeline, which analyzes peeled CFGs.
#[must_use]
pub fn analyze_cfg(
    cfg: Cfg,
    entry: Addr,
    entry_state: AbstractState,
    config: AnalysisConfig,
    summaries: Arc<HashMap<Addr, FunctionSummary>>,
) -> FunctionAnalysis {
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let n = cfg.block_count();

    let mut analysis = FunctionAnalysis {
        entry,
        cfg,
        dom,
        forest,
        block_in: vec![None; n],
        block_out: vec![None; n],
        config,
        summaries,
    };
    analysis.run_fixpoint(entry_state);
    analysis
}

impl FunctionAnalysis {
    /// The CFG the analysis ran on.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The dominator tree.
    #[must_use]
    pub fn dominators(&self) -> &Dominators {
        &self.dom
    }

    /// The loop forest.
    #[must_use]
    pub fn forest(&self) -> &LoopForest {
        &self.forest
    }

    /// The abstract state at a block's entry (`None` if unreachable).
    #[must_use]
    pub fn block_in(&self, b: BlockId) -> Option<&AbstractState> {
        self.block_in[b.0].as_ref()
    }

    /// The abstract state at a block's exit (`None` if unreachable).
    #[must_use]
    pub fn block_out(&self, b: BlockId) -> Option<&AbstractState> {
        self.block_out[b.0].as_ref()
    }

    /// The abstract state flowing along the edge `from → to`, i.e.
    /// `from`'s exit state refined by the branch condition selecting
    /// `to`. `None` if `from` is unreachable.
    #[must_use]
    pub fn edge_state(&self, from: BlockId, to: BlockId) -> Option<AbstractState> {
        let out = self.block_out[from.0].clone()?;
        Some(self.refine_edge(out, from, to))
    }

    /// The abstract state immediately before the instruction at `addr`.
    #[must_use]
    pub fn state_before(&self, addr: Addr) -> Option<AbstractState> {
        let block = self.cfg.block_containing(addr)?;
        let mut state = self.block_in[block.0].clone()?;
        for (ia, inst) in &self.cfg.block(block).insts {
            if *ia == addr {
                return Some(state);
            }
            self.transfer_inst(&mut state, *inst);
        }
        None
    }

    /// The abstract state immediately *before* each call terminator,
    /// keyed by call-site address: the registers and memory the callee
    /// observes at entry — the caller side of VIVU-style context
    /// propagation. Virtual unrolling can duplicate a call site into
    /// several peeled blocks; their states are joined (the callee may be
    /// entered from any copy). Unreachable call blocks contribute
    /// nothing.
    #[must_use]
    pub fn pre_call_states(&self) -> BTreeMap<Addr, AbstractState> {
        let mut out: BTreeMap<Addr, AbstractState> = BTreeMap::new();
        for (id, block) in self.cfg.iter() {
            let (Terminator::Call { ret_to, .. } | Terminator::CallInd { ret_to, .. }) = block.term
            else {
                continue;
            };
            let site = block.site_addr();
            let Some(mut state) = self.block_in[id.0].clone() else {
                continue;
            };
            // The call instruction itself has no data effect
            // (`transfer_inst` ignores control transfers); the call's
            // clobber happens in the *caller's* post-call state only.
            for (_, inst) in &block.insts {
                self.transfer_inst(&mut state, *inst);
            }
            // The hardware writes the return address into the link
            // register *before* the callee runs: the callee must see
            // that, not whatever the caller last held in `lr` — a stale
            // pinned value there could refine the callee against a fact
            // that is concretely false at entry (unsound).
            state.set_reg(Reg::LINK, Value::constant(ret_to.0));
            match out.remove(&site) {
                Some(prev) => {
                    out.insert(site, prev.join(&state));
                }
                None => {
                    out.insert(site, state);
                }
            }
        }
        out
    }

    /// Loop-bound analysis over this function (see [`crate::loopbound`]).
    #[must_use]
    pub fn loop_bounds(&self) -> crate::loopbound::LoopBounds {
        crate::loopbound::compute(self)
    }

    /// Address values for every memory access (see [`crate::addr`]).
    #[must_use]
    pub fn access_values(&self) -> BTreeMap<Addr, Value> {
        crate::addr::access_values(self)
    }

    /// Indirect-target hints recovered by the analysis
    /// (see [`crate::addr`]).
    #[must_use]
    pub fn resolver_hints(&self) -> wcet_cfg::TargetResolver {
        crate::addr::resolver_hints(self)
    }

    // ----- fixpoint -----------------------------------------------------

    fn run_fixpoint(&mut self, entry_state: AbstractState) {
        let n = self.cfg.block_count();
        let entry_block = self.cfg.entry_block();
        let rpo = self.cfg.reverse_postorder();
        let rpo_pos: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();

        self.block_in[entry_block.0] = Some(entry_state);
        let mut visits = vec![0usize; n];
        let mut work: VecDeque<BlockId> = VecDeque::from([entry_block]);

        while let Some(b) = work.pop_front() {
            let Some(in_state) = self.block_in[b.0].clone() else {
                continue;
            };
            let out = self.transfer_block(b, in_state);
            let changed = match &self.block_out[b.0] {
                Some(old) => !out.is_subsumed_by(old),
                None => true,
            };
            if !changed {
                continue;
            }
            self.block_out[b.0] = Some(out);

            for &succ in self.cfg.succs[b.0].clone().iter() {
                let Some(out_state) = self.block_out[b.0].as_ref() else {
                    continue;
                };
                let edge_state = self.refine_edge(out_state.clone(), b, succ);
                let new_in = match &self.block_in[succ.0] {
                    Some(old) => {
                        let joined = old.join(&edge_state);
                        // Widen at loop headers once the delay is spent.
                        let is_header = self
                            .forest
                            .loops()
                            .iter()
                            .any(|l| l.entries.contains(&succ));
                        if is_header && visits[succ.0] >= self.config.widen_delay {
                            old.widen(&joined)
                        } else {
                            joined
                        }
                    }
                    None => edge_state,
                };
                let in_changed = match &self.block_in[succ.0] {
                    Some(old) => !new_in.is_subsumed_by(old),
                    None => true,
                };
                if in_changed {
                    visits[succ.0] += 1;
                    self.block_in[succ.0] = Some(new_in);
                    // Process in RPO-ish order for fast convergence.
                    let pos = rpo_pos.get(&succ).copied().unwrap_or(usize::MAX);
                    if work
                        .front()
                        .is_none_or(|&f| rpo_pos.get(&f).copied().unwrap_or(usize::MAX) > pos)
                    {
                        work.push_front(succ);
                    } else {
                        work.push_back(succ);
                    }
                }
            }
        }

        // Narrowing: recompute decreasing passes without widening.
        for _ in 0..self.config.narrow_passes {
            for &b in &rpo {
                if b != entry_block {
                    let mut acc: Option<AbstractState> = None;
                    for &p in &self.cfg.preds[b.0] {
                        if let Some(out) = self.block_out[p.0].clone() {
                            let refined = self.refine_edge(out, p, b);
                            acc = Some(match acc {
                                Some(cur) => cur.join(&refined),
                                None => refined,
                            });
                        }
                    }
                    if let Some(new_in) = acc {
                        self.block_in[b.0] = Some(new_in);
                    }
                }
                if let Some(in_state) = self.block_in[b.0].clone() {
                    self.block_out[b.0] = Some(self.transfer_block(b, in_state));
                }
            }
        }
    }

    fn transfer_block(&self, b: BlockId, mut state: AbstractState) -> AbstractState {
        let block = self.cfg.block(b);
        for (_, inst) in &block.insts {
            self.transfer_inst(&mut state, *inst);
        }
        // Call effects (the call instruction is the block terminator).
        match &block.term {
            Terminator::Call { callee, ret_to } => {
                self.apply_call_effect(&mut state, &[*callee], *ret_to);
            }
            Terminator::CallInd { callees, ret_to } => {
                if callees.is_empty() {
                    // Unknown callee: fully conservative.
                    state.clobber_call();
                    state.havoc_mem();
                } else {
                    self.apply_call_effect(&mut state, callees, *ret_to);
                }
            }
            _ => {}
        }
        state
    }

    fn apply_call_effect(&self, state: &mut AbstractState, callees: &[Addr], ret_to: Addr) {
        let writes_mem = callees
            .iter()
            .any(|c| self.summaries.get(c).is_none_or(|s| s.writes_mem));
        state.clobber_call();
        if writes_mem {
            state.havoc_mem();
        }
        state.set_reg(Reg::LINK, Value::constant(ret_to.0));
    }

    /// The per-instruction transfer function.
    pub(crate) fn transfer_inst(&self, state: &mut AbstractState, inst: Inst) {
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = alu_value(op, &state.reg(rs1), &state.reg(rs2));
                state.set_reg(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = alu_value(op, &state.reg(rs1), &Value::constant(imm as u32));
                state.set_reg(rd, v);
            }
            Inst::Lui { rd, imm } => state.set_reg(rd, Value::constant(imm << 16)),
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let addr = address_value(state, base, offset);
                let loaded = match width {
                    Width::Word => match addr.as_set() {
                        Some(addrs) => {
                            let mut acc = Value::Bot;
                            for &a in addrs {
                                acc = acc.join(&state.mem_word(a));
                            }
                            acc
                        }
                        None => Value::top(),
                    },
                    // Sub-word loads zero-extend, so the result range is
                    // known even when the memory content is not.
                    Width::Byte => Value::from_interval(Interval::new(0, 0xff)),
                    Width::Half => Value::from_interval(Interval::new(0, 0xffff)),
                };
                state.set_reg(rd, loaded);
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let addr = address_value(state, base, offset);
                let stored = state.reg(rs);
                match addr.as_set() {
                    Some(addrs) if addrs.len() == 1 && width == Width::Word => {
                        let a = *addrs.iter().next().expect("singleton");
                        state.set_mem_word(a, stored);
                    }
                    Some(addrs) => {
                        for &a in addrs {
                            if width == Width::Word {
                                state.weak_set_mem_word(a, &stored);
                            } else {
                                // Partial overwrite: the word becomes unknown.
                                state.set_mem_word(a & !3, Value::top());
                            }
                        }
                    }
                    None => {
                        // The paper's case: a write to an unknown location
                        // destroys all memory knowledge.
                        state.havoc_mem();
                    }
                }
            }
            Inst::Select { rd, rc, rt, rf } => {
                let c = state.reg(rc);
                let v = if c.as_constant() == Some(0) {
                    state.reg(rf)
                } else if !c.may_be(0) && !c.is_bot() {
                    state.reg(rt)
                } else {
                    state.reg(rt).join(&state.reg(rf))
                };
                state.set_reg(rd, v);
            }
            Inst::Alloc { rd, .. } => {
                let v = match self.config.heap_range {
                    Some((lo, hi)) if lo < hi => Value::from_interval(Interval::new(lo, hi - 1)),
                    _ => Value::top(),
                };
                state.set_reg(rd, v);
            }
            // Floating point is not tracked; moves into the FP bank have
            // no effect on the integer state.
            Inst::FAlu { .. } | Inst::FMov { .. } | Inst::FCvt { .. } => {}
            // Control transfers have no data effect here (call effects are
            // applied per block; the link register is set there).
            Inst::Branch { .. }
            | Inst::FBranch { .. }
            | Inst::Jump { .. }
            | Inst::Call { .. }
            | Inst::JumpInd { .. }
            | Inst::CallInd { .. }
            | Inst::Ret
            | Inst::Halt
            | Inst::Nop => {}
        }
    }

    /// Refines the state flowing along edge `from → to` using the branch
    /// condition of `from`.
    fn refine_edge(&self, mut state: AbstractState, from: BlockId, to: BlockId) -> AbstractState {
        let block = self.cfg.block(from);
        let Terminator::CondBranch {
            cond: Some(cond),
            taken,
            fallthrough,
            float: false,
        } = block.term
        else {
            return state;
        };
        if taken == fallthrough {
            return state;
        }
        let Some((_, Inst::Branch { rs1, rs2, .. })) = block.insts.last() else {
            return state;
        };
        let to_addr = self.cfg.block(to).start;
        let effective = if to_addr == taken {
            Some(cond)
        } else if to_addr == fallthrough {
            Some(cond.negate())
        } else {
            None
        };
        if let Some(c) = effective {
            let (v1, v2) = refine_pair(c, state.reg(*rs1), state.reg(*rs2));
            state.set_reg(*rs1, v1);
            state.set_reg(*rs2, v2);
        }
        state
    }
}

/// Computes may-write-memory summaries for every function (transitively
/// through the call graph, conservatively for unresolved calls).
#[must_use]
pub fn compute_summaries(program: &Program) -> HashMap<Addr, FunctionSummary> {
    let mut writes: HashMap<Addr, bool> = HashMap::new();
    for (&f, cfg) in &program.functions {
        let direct = cfg.blocks.iter().any(|b| {
            b.insts.iter().any(|(_, i)| matches!(i, Inst::Store { .. })) || b.term.is_unresolved()
        });
        writes.insert(f, direct);
    }
    // Propagate through calls until stable.
    let mut changed = true;
    while changed {
        changed = false;
        for (&f, cfg) in &program.functions {
            if writes[&f] {
                continue;
            }
            let from_callees = cfg
                .call_sites()
                .iter()
                .flat_map(|(_, callees)| callees.iter())
                .any(|c| writes.get(c).copied().unwrap_or(true));
            if from_callees {
                writes.insert(f, true);
                changed = true;
            }
        }
    }
    writes
        .into_iter()
        .map(|(f, w)| (f, FunctionSummary { writes_mem: w }))
        .collect()
}

fn address_value(state: &AbstractState, base: Reg, offset: i32) -> Value {
    state.reg(base).lift_binop(
        &Value::constant(offset as u32),
        u32::wrapping_add,
        Interval::add,
    )
}

fn alu_value(op: AluOp, a: &Value, b: &Value) -> Value {
    let approx = move |x: Interval, y: Interval| -> Interval {
        match op {
            AluOp::Add => x.add(y),
            AluOp::Sub => x.sub(y),
            AluOp::Mul => x.mul(y),
            AluOp::Mulhu => {
                // Monotone in both unsigned operands.
                match (x.lo(), x.hi(), y.lo(), y.hi()) {
                    (Some(xl), Some(xh), Some(yl), Some(yh)) => {
                        let lo = ((u64::from(xl) * u64::from(yl)) >> 32) as u32;
                        let hi = ((u64::from(xh) * u64::from(yh)) >> 32) as u32;
                        Interval::new(lo, hi)
                    }
                    _ => Interval::BOTTOM,
                }
            }
            AluOp::And => match (x.hi(), y.hi()) {
                (Some(xh), Some(yh)) => Interval::new(0, xh.min(yh)),
                _ => Interval::BOTTOM,
            },
            AluOp::Or | AluOp::Xor => match (x.hi(), y.hi()) {
                (Some(xh), Some(yh)) => {
                    // Result cannot exceed the next power of two above
                    // either operand's maximum, minus one.
                    let bits = 32 - (xh | yh).leading_zeros();
                    let hi = if bits >= 32 {
                        u32::MAX
                    } else {
                        (1u32 << bits) - 1
                    };
                    let lo = if op == AluOp::Or {
                        x.lo().unwrap_or(0).max(y.lo().unwrap_or(0))
                    } else {
                        0
                    };
                    Interval::new(lo.min(hi), hi)
                }
                _ => Interval::BOTTOM,
            },
            AluOp::Shl => match y.as_constant() {
                Some(c) => x.shl_const(c),
                None => Interval::TOP,
            },
            AluOp::Shr => match y.as_constant() {
                Some(c) => x.shr_const(c),
                None => Interval::TOP,
            },
            AluOp::Sra => Interval::TOP,
            AluOp::Slt => match (x.signed_bounds(), y.signed_bounds()) {
                (Some((xl, xh)), Some((yl, yh))) => {
                    if xh < yl {
                        Interval::constant(1)
                    } else if xl >= yh {
                        Interval::constant(0)
                    } else {
                        Interval::new(0, 1)
                    }
                }
                _ => Interval::new(0, 1),
            },
            AluOp::Sltu => match (x.lo(), x.hi(), y.lo(), y.hi()) {
                (Some(xl), Some(xh), Some(yl), Some(yh)) => {
                    if xh < yl {
                        Interval::constant(1)
                    } else if xl >= yh {
                        Interval::constant(0)
                    } else {
                        Interval::new(0, 1)
                    }
                }
                _ => Interval::new(0, 1),
            },
        }
    };
    a.lift_binop(b, |x, y| op.apply(x, y), approx)
}

/// Refines both operand values under the assumption that `cond(a, b)`
/// holds.
fn refine_pair(cond: Cond, a: Value, b: Value) -> (Value, Value) {
    match cond {
        Cond::Eq => {
            let met = Value::from_interval(a.to_interval().meet(b.to_interval()));
            let met = match (a.as_set(), b.as_set()) {
                (Some(sa), Some(sb)) => Value::from_set(sa.intersection(sb).copied().collect()),
                _ => met,
            };
            (met.clone(), met)
        }
        Cond::Ne => {
            let remove = |v: &Value, other: &Value| -> Value {
                match (v.as_set(), other.as_constant()) {
                    (Some(s), Some(c)) => {
                        let filtered: std::collections::BTreeSet<u32> =
                            s.iter().copied().filter(|&x| x != c).collect();
                        Value::from_set(filtered)
                    }
                    _ => {
                        // Shrink interval endpoints touching the excluded
                        // constant.
                        if let (Some(c), Some(lo), Some(hi)) = (
                            other.as_constant(),
                            v.to_interval().lo(),
                            v.to_interval().hi(),
                        ) {
                            if lo == c && lo < hi {
                                return Value::from_interval(Interval::new(lo + 1, hi));
                            }
                            if hi == c && lo < hi {
                                return Value::from_interval(Interval::new(lo, hi - 1));
                            }
                        }
                        v.clone()
                    }
                }
            };
            (remove(&a, &b), remove(&b, &a))
        }
        Cond::Ltu => {
            let ra = match (a.as_set(), b.to_interval().hi()) {
                // Keep exact sets exact: drop elements that cannot satisfy
                // a < b for any b.
                (Some(_), Some(bh)) => filter_set(
                    &a,
                    Value::from_interval(a.to_interval().refine_ltu(b.to_interval())),
                    |x| x < bh,
                ),
                _ => Value::from_interval(a.to_interval().refine_ltu(b.to_interval())),
            };
            (ra, b)
        }
        Cond::Geu => {
            let ra = Value::from_interval(a.to_interval().refine_geu(b.to_interval()));
            (ra, b)
        }
        Cond::Lt | Cond::Ge => {
            // Signed refinement only when both operands stay on one side
            // of the sign boundary, where the unsigned order agrees.
            match (
                a.to_interval().signed_bounds(),
                b.to_interval().signed_bounds(),
            ) {
                (Some((al, _)), Some((bl, _))) if al >= 0 && bl >= 0 => {
                    let unsigned = if cond == Cond::Lt {
                        Cond::Ltu
                    } else {
                        Cond::Geu
                    };
                    refine_pair(unsigned, a, b)
                }
                _ => (a, b),
            }
        }
    }
}

fn filter_set(original: &Value, fallback: Value, keep: impl Fn(u32) -> bool) -> Value {
    match original.as_set() {
        Some(s) => {
            let filtered: std::collections::BTreeSet<u32> =
                s.iter().copied().filter(|&x| keep(x)).collect();
            if filtered.is_empty() {
                fallback
            } else {
                Value::from_set(filtered)
            }
        }
        None => fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn analyze(src: &str) -> (Program, Image, FunctionAnalysis) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        (p, image, fa)
    }

    #[test]
    fn constants_propagate_through_blocks() {
        let (_, _, fa) = analyze("main: li r1, 7\n addi r2, r1, 3\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        assert_eq!(exit.reg(Reg::new(2)).as_constant(), Some(10));
    }

    #[test]
    fn lui_ori_constant() {
        let (_, _, fa) = analyze("main: li r1, 0xdeadbeef\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        assert_eq!(exit.reg(Reg::new(1)).as_constant(), Some(0xdead_beef));
    }

    #[test]
    fn loop_counter_interval_bounded_by_refinement() {
        // r1 counts 10 → 0; at loop exit the fallthrough refinement pins
        // r1 = 0.
        let (_, _, fa) =
            analyze("main: li r1, 10\nloop: subi r1, r1, 1\n bne r1, r0, loop\n done: halt");
        let done = fa.cfg().block_at(fa.entry.offset(12)).unwrap();
        let state = fa.block_in(done).unwrap();
        assert_eq!(state.reg(Reg::new(1)).as_constant(), Some(0));
    }

    #[test]
    fn memory_constant_round_trip() {
        let (_, _, fa) =
            analyze("main: li r1, 0x100\n li r2, 42\n sw r2, 0(r1)\n lw r3, 0(r1)\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        assert_eq!(exit.reg(Reg::new(3)).as_constant(), Some(42));
    }

    #[test]
    fn unknown_store_havocs_memory() {
        // r4 is unknown (function argument); storing through it erases the
        // knowledge about 0x100.
        let (_, _, fa) = analyze(
            "main: li r1, 0x100\n li r2, 42\n sw r2, 0(r1)\n sw r2, 0(r4)\n lw r3, 0(r1)\n halt",
        );
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        assert!(exit.reg(Reg::new(3)).is_top());
    }

    #[test]
    fn data_segment_readable() {
        let (_, _, fa) = analyze(".data 0x5000 17, 99\nmain: li r1, 0x5004\n lw r2, 0(r1)\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        assert_eq!(exit.reg(Reg::new(2)).as_constant(), Some(99));
    }

    #[test]
    fn call_clobbers_caller_saved_but_not_callee_saved() {
        let (_, _, fa) = analyze("main: li r1, 5\n li r10, 7\n call f\n halt\nf: ret");
        let halt_block = fa
            .cfg()
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Halt))
            .unwrap()
            .0;
        let state = fa.block_in(halt_block).unwrap();
        assert!(state.reg(Reg::new(1)).is_top(), "caller-saved clobbered");
        assert_eq!(state.reg(Reg::new(10)).as_constant(), Some(7));
    }

    #[test]
    fn pure_callee_preserves_memory() {
        // f writes nothing, so the caller's memory knowledge survives.
        let (_, _, fa) = analyze(
            "main: li r1, 0x100\n li r2, 9\n sw r2, 0(r1)\n call f\n li r3, 0x100\n lw r4, 0(r3)\n halt\nf: addi r5, r0, 1\n ret",
        );
        let halt_block = fa
            .cfg()
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Halt))
            .unwrap()
            .0;
        let state = fa.block_out(halt_block).unwrap();
        assert_eq!(state.reg(Reg::new(4)).as_constant(), Some(9));
    }

    #[test]
    fn writing_callee_havocs_memory() {
        let (_, _, fa) = analyze(
            "main: li r1, 0x100\n li r2, 9\n sw r2, 0(r1)\n call f\n li r3, 0x100\n lw r4, 0(r3)\n halt\nf: sw r0, 0(r6)\n ret",
        );
        let halt_block = fa
            .cfg()
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Halt))
            .unwrap()
            .0;
        let state = fa.block_out(halt_block).unwrap();
        assert!(state.reg(Reg::new(4)).is_top());
    }

    #[test]
    fn alloc_returns_heap_range() {
        let (_, _, fa) = analyze("main: li r1, 64\n alloc r2, r1\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        let v = exit.reg(Reg::new(2));
        assert!(!v.is_top(), "heap range known");
        assert!(v.may_be(0x2000_0000));
        assert!(!v.may_be(0x100));
    }

    #[test]
    fn select_joins_both_arms() {
        let (_, _, fa) = analyze("main: li r2, 10\n li r3, 20\n sel r4, r5, r2, r3\n halt");
        let exit = fa.block_out(fa.cfg().entry_block()).unwrap();
        let v = exit.reg(Reg::new(4));
        assert!(v.may_be(10) && v.may_be(20));
        assert!(!v.may_be(15));
    }

    #[test]
    fn widening_terminates_on_unbounded_loop() {
        // r1 grows forever; the fixpoint must still terminate.
        let (_, _, fa) = analyze("main: li r1, 0\nloop: addi r1, r1, 1\n j loop");
        let header = fa.cfg().block_at(fa.entry.offset(4)).unwrap();
        let state = fa.block_in(header).unwrap();
        // Sound: r1 may be arbitrarily large.
        assert!(state.reg(Reg::new(1)).may_be(1_000_000));
    }

    #[test]
    fn pre_call_states_expose_argument_registers() {
        // r1 = 7 at the first site, r1 = 19 at the second: the callee's
        // per-context entry states must see exactly those values.
        let (p, _, fa) = analyze("main: li r1, 7\n call f\n li r1, 19\n call f\n halt\nf: ret");
        let sites = fa.pre_call_states();
        assert_eq!(sites.len(), 2);
        let values: Vec<Option<u32>> = p
            .entry_cfg()
            .call_sites()
            .iter()
            .map(|(site, _)| sites[site].reg(Reg::new(1)).as_constant())
            .collect();
        assert_eq!(values, vec![Some(7), Some(19)]);
    }

    #[test]
    fn pre_call_states_carry_the_return_address_in_lr() {
        // Regression: the snapshot used to keep the caller's *stale* lr.
        // The hardware writes the return address before callee entry, so
        // a caller that pins lr (here: mov lr, r0 → lr = 0) must not
        // leak that into the callee's entry state — a callee branching
        // on lr would be refined against a concretely false fact.
        let (p, _, fa) = analyze("main: mov lr, r0\n call f\n halt\nf: ret");
        let (site, _) = p.entry_cfg().call_sites()[0];
        let state = &fa.pre_call_states()[&site];
        let lr = state.reg(Reg::LINK);
        assert_eq!(
            lr.as_constant(),
            Some(site.next().0),
            "callee sees the return address, not the caller's stale lr: {lr}"
        );
    }

    #[test]
    fn state_digest_is_stable_and_discriminating() {
        let (_, _, fa) = analyze("main: li r1, 7\n call f\n halt\nf: ret");
        let state = fa.pre_call_states().into_values().next().unwrap();
        assert_eq!(state.digest(), state.digest(), "deterministic");
        let mut other = state.clone();
        other.set_reg(Reg::new(1), crate::value::Value::constant(8));
        assert_ne!(state.digest(), other.digest(), "value changes the digest");
        let mut mem = state.clone();
        mem.set_mem_word(0x100, crate::value::Value::constant(1));
        assert_ne!(state.digest(), mem.digest(), "memory changes the digest");
    }

    #[test]
    fn diamond_join_merges_constants() {
        let (_, _, fa) =
            analyze("main: beq r5, r0, other\n li r1, 1\n j join\nother: li r1, 2\njoin: halt");
        let join = fa
            .cfg()
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Halt))
            .unwrap()
            .0;
        let v = fa.block_in(join).unwrap().reg(Reg::new(1));
        assert!(v.may_be(1) && v.may_be(2) && !v.may_be(3));
    }
}
