//! Abstract machine states: registers plus a word-granular memory map.
//!
//! Memory is tracked per word address; an *absent* entry means "unknown"
//! (top). A store through an unknown pointer therefore erases the whole
//! map — the behaviour the paper describes verbatim: "any write access to
//! an unknown memory location destroys all known information about memory
//! during the value analysis phase".

use std::collections::BTreeMap;
use std::fmt;

use wcet_isa::Reg;

use crate::value::Value;

/// An abstract state over the sixteen integer registers and known memory
/// words. Floating-point registers are deliberately *not* tracked: the
/// value analysis works on integers only (which is why rule 13.4 loops
/// cannot be bounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractState {
    regs: [Value; Reg::COUNT],
    /// Word-aligned address → known value. Absent ⇒ unknown.
    mem: BTreeMap<u32, Value>,
}

impl AbstractState {
    /// The state in which every register and memory word is unknown.
    #[must_use]
    pub fn all_unknown() -> AbstractState {
        AbstractState {
            regs: std::array::from_fn(|_| Value::top()),
            mem: BTreeMap::new(),
        }
    }

    /// Reads a register (`r0` is always the constant 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> Value {
        if r == Reg::ZERO {
            Value::constant(0)
        } else {
            self.regs[r.index()].clone()
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: Value) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Reads the known value of the word at `addr` (top if untracked or
    /// misaligned).
    #[must_use]
    pub fn mem_word(&self, addr: u32) -> Value {
        if !addr.is_multiple_of(4) {
            return Value::top();
        }
        self.mem.get(&addr).cloned().unwrap_or_else(Value::top)
    }

    /// Strong update of the word at `addr`.
    pub fn set_mem_word(&mut self, addr: u32, v: Value) {
        if !addr.is_multiple_of(4) {
            return;
        }
        if v.is_top() {
            self.mem.remove(&addr);
        } else {
            self.mem.insert(addr, v);
        }
    }

    /// Weak update: the word at `addr` *may* have been overwritten with
    /// `v`.
    pub fn weak_set_mem_word(&mut self, addr: u32, v: &Value) {
        let joined = self.mem_word(addr).join(v);
        self.set_mem_word(addr, joined);
    }

    /// Forgets everything known about memory (a write through an unknown
    /// pointer).
    pub fn havoc_mem(&mut self) {
        self.mem.clear();
    }

    /// Forgets all caller-saved registers and the link register — the
    /// effect of an opaque call under the calling convention
    /// (`r1`–`r9` caller-saved, `r10`–`r13` callee-saved, `r14` = sp
    /// preserved, `r15` = link clobbered).
    pub fn clobber_call(&mut self) {
        for idx in 1..=9 {
            self.regs[idx] = Value::top();
        }
        self.regs[Reg::LINK.index()] = Value::top();
    }

    /// Number of memory words with known values.
    #[must_use]
    pub fn known_mem_words(&self) -> usize {
        self.mem.len()
    }

    /// Pointwise join.
    #[must_use]
    pub fn join(&self, other: &AbstractState) -> AbstractState {
        let regs = std::array::from_fn(|i| self.regs[i].join(&other.regs[i]));
        // Keys absent on either side are top there, so only the
        // intersection survives.
        let mem = self
            .mem
            .iter()
            .filter_map(|(addr, v)| other.mem.get(addr).map(|w| (*addr, v.join(w))))
            .collect();
        AbstractState { regs, mem }
    }

    /// Pointwise widening.
    #[must_use]
    pub fn widen(&self, next: &AbstractState) -> AbstractState {
        let regs = std::array::from_fn(|i| self.regs[i].widen(&next.regs[i]));
        let mem = self
            .mem
            .iter()
            .filter_map(|(addr, v)| next.mem.get(addr).map(|w| (*addr, v.widen(w))))
            .filter(|(_, v)| !v.is_top())
            .collect();
        AbstractState { regs, mem }
    }

    /// A stable content digest of the state (FNV-1a via
    /// [`wcet_isa::hash`]): the incremental engine keys per-context IPET
    /// solutions on the digest of the context's entry state, so two runs
    /// (and two processes) must agree on it byte for byte.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = wcet_isa::hash::StableHasher::new();
        for v in &self.regs {
            v.digest_into(&mut h);
        }
        h.write_usize(self.mem.len());
        for (addr, v) in &self.mem {
            h.write_u32(*addr);
            v.digest_into(&mut h);
        }
        h.finish()
    }

    /// The domain partial order: true if `self` is at least as precise as
    /// it needs to be, i.e. every behaviour of `self` is covered by
    /// `other`.
    #[must_use]
    pub fn is_subsumed_by(&self, other: &AbstractState) -> bool {
        for i in 0..Reg::COUNT {
            if !self.regs[i].is_subsumed_by(&other.regs[i]) {
                return false;
            }
        }
        // Every memory fact claimed by `other` must be implied by `self`.
        other
            .mem
            .iter()
            .all(|(addr, w)| self.mem.get(addr).is_some_and(|v| v.is_subsumed_by(w)))
    }
}

impl Default for AbstractState {
    fn default() -> Self {
        AbstractState::all_unknown()
    }
}

impl fmt::Display for AbstractState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.regs.iter().enumerate() {
            if !v.is_top() {
                writeln!(f, "  r{i} = {v}")?;
            }
        }
        for (addr, v) in &self.mem {
            writeln!(f, "  [0x{addr:x}] = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_constant_zero() {
        let mut s = AbstractState::all_unknown();
        assert_eq!(s.reg(Reg::ZERO).as_constant(), Some(0));
        s.set_reg(Reg::ZERO, Value::constant(7));
        assert_eq!(s.reg(Reg::ZERO).as_constant(), Some(0));
    }

    #[test]
    fn memory_join_keeps_intersection() {
        let mut a = AbstractState::all_unknown();
        a.set_mem_word(0x100, Value::constant(1));
        a.set_mem_word(0x104, Value::constant(2));
        let mut b = AbstractState::all_unknown();
        b.set_mem_word(0x100, Value::constant(5));
        let j = a.join(&b);
        assert!(j.mem_word(0x100).may_be(1));
        assert!(j.mem_word(0x100).may_be(5));
        assert!(
            j.mem_word(0x104).is_top(),
            "0x104 unknown in b → unknown in join"
        );
    }

    #[test]
    fn havoc_destroys_all_memory_knowledge() {
        let mut s = AbstractState::all_unknown();
        s.set_mem_word(0x100, Value::constant(1));
        s.set_mem_word(0x200, Value::constant(2));
        assert_eq!(s.known_mem_words(), 2);
        s.havoc_mem();
        assert_eq!(s.known_mem_words(), 0);
        assert!(s.mem_word(0x100).is_top());
    }

    #[test]
    fn call_clobbers_caller_saved_only() {
        let mut s = AbstractState::all_unknown();
        s.set_reg(Reg::new(1), Value::constant(1));
        s.set_reg(Reg::new(10), Value::constant(10));
        s.clobber_call();
        assert!(s.reg(Reg::new(1)).is_top());
        assert_eq!(s.reg(Reg::new(10)).as_constant(), Some(10));
    }

    #[test]
    fn weak_update_joins() {
        let mut s = AbstractState::all_unknown();
        s.set_mem_word(0x40, Value::constant(1));
        s.weak_set_mem_word(0x40, &Value::constant(9));
        let v = s.mem_word(0x40);
        assert!(v.may_be(1) && v.may_be(9));
    }

    #[test]
    fn misaligned_memory_is_untracked() {
        let mut s = AbstractState::all_unknown();
        s.set_mem_word(0x41, Value::constant(1));
        assert!(s.mem_word(0x41).is_top());
    }

    #[test]
    fn subsumption() {
        let mut precise = AbstractState::all_unknown();
        precise.set_reg(Reg::new(1), Value::constant(4));
        precise.set_mem_word(0x10, Value::constant(1));
        let coarse = AbstractState::all_unknown();
        assert!(precise.is_subsumed_by(&coarse));
        assert!(!coarse.is_subsumed_by(&precise));
        assert!(precise.is_subsumed_by(&precise));
    }
}
