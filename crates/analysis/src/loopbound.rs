//! Data-flow based loop-bound detection.
//!
//! For every loop of the analyzed function this module tries to prove an
//! upper bound on the number of header executions per loop entry — the
//! quantity the path analysis needs ("the main challenge is to
//! automatically bound the maximum possible number of loop iterations,
//! which is mandatory to compute a WCET bound at all", Section 3.2).
//!
//! The detector recognizes counter loops: a register updated exactly once
//! per iteration by a constant step, tested against a loop-invariant limit
//! by the exit branch. Everything the paper's Section 4.2 discusses falls
//! out of the failure cases, each with a machine-readable
//! [`UnboundedReason`]:
//!
//! * floating-point controlled loops → [`UnboundedReason::FloatControlled`]
//!   (MISRA rule 13.4),
//! * counters written more than once per iteration →
//!   [`UnboundedReason::ComplexCounterUpdate`] (rule 13.6),
//! * irreducible loops → [`UnboundedReason::Irreducible`] (rule 14.4),
//! * counters whose initial value or limit traces back to unknown input →
//!   [`UnboundedReason::DataDependent`] (Section 4.3, rule 16.1 varargs).

use std::fmt;

use wcet_cfg::block::{BlockId, Terminator};
use wcet_cfg::loops::{LoopId, LoopInfo};
use wcet_isa::{AluOp, Cond, Inst, Reg};

use crate::valueanalysis::FunctionAnalysis;

/// Why a loop could not be bounded automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnboundedReason {
    /// The exit condition compares floating-point registers, which the
    /// integer value analysis cannot see (MISRA rule 13.4).
    FloatControlled,
    /// The candidate counter is written more than once per iteration or by
    /// a non-constant amount (MISRA rule 13.6).
    ComplexCounterUpdate,
    /// The loop has multiple entries; no automatic technique applies
    /// (MISRA rules 14.4 / 20.7, Section 3.2).
    Irreducible,
    /// The counter's initial value or the limit is statically unknown —
    /// an input-data dependent loop (Section 4.3; rule 16.1's varargs
    /// loops are this case).
    DataDependent,
    /// The loop has no exit edge at all (intentional infinite loop, e.g. a
    /// scheduler main loop).
    NoExit,
    /// No counter pattern was recognized.
    NoPattern,
}

impl fmt::Display for UnboundedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnboundedReason::FloatControlled => {
                "exit condition is floating-point (MISRA 13.4 violation)"
            }
            UnboundedReason::ComplexCounterUpdate => {
                "loop counter modified multiple times per iteration (MISRA 13.6 violation)"
            }
            UnboundedReason::Irreducible => {
                "irreducible loop: multiple entries (MISRA 14.4/20.7 violation)"
            }
            UnboundedReason::DataDependent => "input-data dependent iteration count",
            UnboundedReason::NoExit => "loop has no exit edge",
            UnboundedReason::NoPattern => "no recognizable counter pattern",
        };
        f.write_str(s)
    }
}

/// Where a bound came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// Derived automatically by this module.
    Auto,
    /// Supplied by a design-level annotation.
    Annotation,
}

/// The bound result for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundResult {
    /// The header executes at most `max_iterations` times per loop entry.
    Bounded {
        /// Maximum header executions per entry into the loop.
        max_iterations: u64,
        /// Provenance of the bound.
        source: BoundSource,
    },
    /// No bound could be established.
    Unbounded {
        /// Machine-readable diagnosis.
        reason: UnboundedReason,
    },
}

impl BoundResult {
    /// The bound value, if bounded.
    #[must_use]
    pub fn max_iterations(&self) -> Option<u64> {
        match self {
            BoundResult::Bounded { max_iterations, .. } => Some(*max_iterations),
            BoundResult::Unbounded { .. } => None,
        }
    }
}

/// Bounds for every loop of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    results: Vec<(LoopId, BoundResult)>,
}

impl LoopBounds {
    /// Rebuilds a bounds table from recorded `(loop, result)` pairs — the
    /// artifact-cache replay path. The pairs must refer to the loop ids of
    /// the forest the bounds were originally computed over; the cache
    /// layer guarantees that by keying artifacts on function content
    /// (identical CFG ⇒ identical, deterministic forest).
    #[must_use]
    pub fn from_results(results: Vec<(LoopId, BoundResult)>) -> LoopBounds {
        LoopBounds { results }
    }

    /// All `(loop, result)` pairs, in loop-id order.
    #[must_use]
    pub fn results(&self) -> &[(LoopId, BoundResult)] {
        &self.results
    }

    /// The result for one loop.
    #[must_use]
    pub fn bound(&self, id: LoopId) -> Option<&BoundResult> {
        self.results.iter().find(|(l, _)| *l == id).map(|(_, r)| r)
    }

    /// True if every loop is bounded — the precondition for any WCET bound
    /// to exist at all.
    #[must_use]
    pub fn all_bounded(&self) -> bool {
        self.results
            .iter()
            .all(|(_, r)| matches!(r, BoundResult::Bounded { .. }))
    }

    /// Overrides the result for `id` with an annotation-supplied bound.
    pub fn apply_annotation(&mut self, id: LoopId, max_iterations: u64) {
        for (l, r) in &mut self.results {
            if *l == id {
                *r = BoundResult::Bounded {
                    max_iterations,
                    source: BoundSource::Annotation,
                };
            }
        }
    }

    /// Loops that remain unbounded, with reasons.
    #[must_use]
    pub fn unbounded(&self) -> Vec<(LoopId, UnboundedReason)> {
        self.results
            .iter()
            .filter_map(|(l, r)| match r {
                BoundResult::Unbounded { reason } => Some((*l, *reason)),
                BoundResult::Bounded { .. } => None,
            })
            .collect()
    }
}

/// Computes bounds for all loops of `fa`'s function.
#[must_use]
pub fn compute(fa: &FunctionAnalysis) -> LoopBounds {
    let results = fa
        .forest()
        .loops()
        .iter()
        .map(|info| (info.id, bound_loop(fa, info)))
        .collect();
    LoopBounds { results }
}

fn bound_loop(fa: &FunctionAnalysis, info: &LoopInfo) -> BoundResult {
    if info.irreducible {
        return BoundResult::Unbounded {
            reason: UnboundedReason::Irreducible,
        };
    }
    if info.exits.is_empty() {
        return BoundResult::Unbounded {
            reason: UnboundedReason::NoExit,
        };
    }

    // Find the exit edges driven by conditional branches and try each.
    let mut best: Option<BoundResult> = None;
    let mut saw_float = false;
    let mut saw_complex = false;
    let mut saw_data_dep = false;
    for &(from, to) in &info.exits {
        match exit_bound(fa, info, from, to) {
            Ok(iterations) => {
                let result = BoundResult::Bounded {
                    max_iterations: iterations,
                    source: BoundSource::Auto,
                };
                // Any single sound exit bound bounds the whole loop: the
                // loop cannot run longer than its tightest provable exit.
                best = Some(match best {
                    Some(BoundResult::Bounded { max_iterations, .. })
                        if max_iterations <= iterations =>
                    {
                        best.expect("present")
                    }
                    _ => result,
                });
            }
            Err(UnboundedReason::FloatControlled) => saw_float = true,
            Err(UnboundedReason::ComplexCounterUpdate) => saw_complex = true,
            Err(UnboundedReason::DataDependent) => saw_data_dep = true,
            Err(_) => {}
        }
    }

    if let Some(b) = best {
        return b;
    }
    let reason = if saw_float {
        UnboundedReason::FloatControlled
    } else if saw_complex {
        UnboundedReason::ComplexCounterUpdate
    } else if saw_data_dep {
        UnboundedReason::DataDependent
    } else {
        UnboundedReason::NoPattern
    };
    BoundResult::Unbounded { reason }
}

/// Tries to bound the loop through the exit edge `from → to`.
fn exit_bound(
    fa: &FunctionAnalysis,
    info: &LoopInfo,
    from: BlockId,
    _to: BlockId,
) -> Result<u64, UnboundedReason> {
    let cfg = fa.cfg();
    let block = cfg.block(from);
    let (cond, taken, fallthrough) = match block.term {
        Terminator::CondBranch {
            cond: Some(c),
            taken,
            fallthrough,
            float: false,
        } => (c, taken, fallthrough),
        Terminator::CondBranch { float: true, .. } => return Err(UnboundedReason::FloatControlled),
        _ => return Err(UnboundedReason::NoPattern),
    };
    let Some((_, Inst::Branch { rs1, rs2, .. })) = block.insts.last().copied() else {
        return Err(UnboundedReason::NoPattern);
    };

    // Which way stays in the loop? Resolve the branch targets through the
    // block's actual successor edges (not a global address lookup): on
    // virtually-unrolled CFGs several blocks share a start address and
    // only the edges disambiguate the context.
    let successor_starting_at = |addr| {
        cfg.succs[from.0]
            .iter()
            .copied()
            .find(|&s| cfg.block(s).start == addr)
    };
    let taken_in_loop = successor_starting_at(taken).is_some_and(|b| info.blocks.contains(&b));
    let fall_in_loop = successor_starting_at(fallthrough).is_some_and(|b| info.blocks.contains(&b));
    let continue_cond = match (taken_in_loop, fall_in_loop) {
        (true, false) => cond,
        (false, true) => cond.negate(),
        _ => return Err(UnboundedReason::NoPattern),
    };

    // Identify counter and limit: the counter side is updated (once) by a
    // constant step; the limit side is either loop-invariant (no in-loop
    // defs) or *value-invariant* — redefined in the loop but provably the
    // same constant at the branch (compilers rematerialize limits).
    let defs1 = loop_defs(fa, info, rs1);
    let defs2 = loop_defs(fa, info, rs2);
    let limit_value_at_branch = |reg: Reg| -> Option<crate::interval::Interval> {
        let branch_addr = block.insts.last().map(|(a, _)| *a)?;
        let state = fa.state_before(branch_addr)?;
        state
            .reg(reg)
            .as_constant()
            .map(crate::interval::Interval::constant)
    };
    let limit_ok = |defs: &[Inst], reg: Reg| -> bool {
        defs.is_empty() || limit_value_at_branch(reg).is_some()
    };
    let (counter, limit_reg, cond_norm, limit_adjust, counter_defs) =
        if !defs1.is_empty() && counter_step(&defs1, rs1).is_some() && limit_ok(&defs2, rs2) {
            (rs1, rs2, continue_cond, 0i64, defs1)
        } else if !defs2.is_empty() && counter_step(&defs2, rs2).is_some() && limit_ok(&defs1, rs1)
        {
            let (c, adj) = swap_cond(continue_cond);
            (rs2, rs1, c, adj, defs2)
        } else if defs1.len() > 1 || defs2.len() > 1 {
            return Err(UnboundedReason::ComplexCounterUpdate);
        } else {
            return Err(UnboundedReason::NoPattern);
        };

    let (update_block, update_idx) =
        counter_def_site(fa, info, counter).ok_or(UnboundedReason::NoPattern)?;
    let step = counter_step(&counter_defs, counter).ok_or(UnboundedReason::ComplexCounterUpdate)?;
    if step == 0 {
        return Err(UnboundedReason::NoPattern);
    }

    // Initial counter value: join of states flowing into the loop entries
    // from outside.
    // An unreachable or infeasible loop entry (every entering edge
    // refined to bottom — common after virtual unrolling when the peeled
    // first iteration is the only one) means the loop body never runs.
    let Some(init) = entry_value(fa, info, counter) else {
        return Ok(0);
    };
    // A limit redefined inside the loop must use its proven constant at
    // the branch; otherwise the entry value is authoritative.
    let limit = if loop_defs(fa, info, limit_reg).is_empty() {
        match entry_value(fa, info, limit_reg) {
            Some(iv) => iv,
            None => return Ok(0),
        }
    } else {
        limit_value_at_branch(limit_reg).ok_or(UnboundedReason::DataDependent)?
    };

    let (Some(init_lo), Some(init_hi)) = (init.lo(), init.hi()) else {
        return Err(UnboundedReason::DataDependent);
    };
    let (Some(limit_lo), Some(limit_hi)) = (limit.lo(), limit.hi()) else {
        return Err(UnboundedReason::DataDependent);
    };
    if init.is_top() || limit.is_top() {
        return Err(UnboundedReason::DataDependent);
    }

    // Does the first execution of the branch see the counter before or
    // after its update? Decidable when one site dominates the other;
    // ambiguous shapes take the worst case of both.
    let branch_idx = block.insts.len() - 1;
    let offsets: Vec<i64> = if update_block == from {
        if update_idx < branch_idx {
            vec![step]
        } else {
            vec![0]
        }
    } else if fa.dominators().dominates(update_block, from) {
        vec![step]
    } else if fa.dominators().dominates(from, update_block) {
        vec![0]
    } else {
        vec![0, step]
    };

    let mut worst: u64 = 0;
    for &first_offset in &offsets {
        for &i0 in &[i64::from(init_lo), i64::from(init_hi)] {
            for &lim in &[i64::from(limit_lo), i64::from(limit_hi)] {
                let k =
                    iterations_until_exit(i0 + first_offset, step, lim + limit_adjust, cond_norm)
                        .ok_or(UnboundedReason::DataDependent)?;
                worst = worst.max(k);
            }
        }
    }
    // A "bound" spanning (a sizable fraction of) the whole 32-bit domain
    // means the counter's range came from the type, not from the program:
    // the loop is input-data dependent and the useful bound must come from
    // a design-level annotation — the paper's point that "it generally
    // does not suffice to assume the maximal possible number of loop
    // iterations".
    const DOMAIN_BOUND_CUTOFF: u64 = 1 << 24;
    if worst > DOMAIN_BOUND_CUTOFF {
        return Err(UnboundedReason::DataDependent);
    }
    Ok(worst)
}

/// The constant per-iteration step if `defs` is exactly one
/// `counter = counter ± c` instruction, else `None`.
fn counter_step(defs: &[Inst], counter: Reg) -> Option<i64> {
    if defs.len() != 1 {
        return None;
    }
    match defs[0] {
        Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1: src,
            imm,
        } if rd == counter && src == counter => Some(i64::from(imm)),
        Inst::AluImm {
            op: AluOp::Sub,
            rd,
            rs1: src,
            imm,
        } if rd == counter && src == counter => Some(-i64::from(imm)),
        _ => None,
    }
}

/// The block and in-block index of the (single) counter update.
fn counter_def_site(fa: &FunctionAnalysis, info: &LoopInfo, reg: Reg) -> Option<(BlockId, usize)> {
    for &b in info.blocks.iter() {
        for (idx, (_, inst)) in fa.cfg().block(b).insts.iter().enumerate() {
            if inst.def_reg() == Some(reg) {
                return Some((b, idx));
            }
        }
    }
    None
}

/// All defining instructions of `reg` inside the loop.
fn loop_defs(fa: &FunctionAnalysis, info: &LoopInfo, reg: Reg) -> Vec<Inst> {
    let mut defs = Vec::new();
    for &b in info.blocks.iter() {
        for (_, inst) in &fa.cfg().block(b).insts {
            if inst.def_reg() == Some(reg) {
                defs.push(*inst);
            }
        }
        // Calls clobber caller-saved registers.
        if matches!(
            fa.cfg().block(b).term,
            Terminator::Call { .. } | Terminator::CallInd { .. }
        ) && (1..=9).contains(&reg.index())
        {
            defs.push(Inst::Nop); // opaque def
        }
    }
    defs
}

/// The interval of `reg` joined over all edges entering the loop from
/// outside.
fn entry_value(
    fa: &FunctionAnalysis,
    info: &LoopInfo,
    reg: Reg,
) -> Option<crate::interval::Interval> {
    let cfg = fa.cfg();
    let mut acc: Option<crate::value::Value> = None;
    for &entry in &info.entries {
        for &pred in &cfg.preds[entry.0] {
            if info.blocks.contains(&pred) {
                continue;
            }
            // Unreachable predecessors contribute nothing; the branch
            // refinement along the edge can prove an entry infeasible
            // (its values go to bottom), which also contributes nothing.
            let Some(state) = fa.edge_state(pred, entry) else {
                continue;
            };
            let v = state.reg(reg);
            if v.is_bot() {
                continue;
            }
            acc = Some(match acc {
                Some(cur) => cur.join(&v),
                None => v,
            });
        }
        // The function entry block can be a loop entry with no preds.
        if entry == cfg.entry_block() && cfg.preds[entry.0].iter().all(|p| info.blocks.contains(p))
        {
            let v = fa.block_in(entry)?.reg(reg);
            acc = Some(match acc {
                Some(cur) => cur.join(&v),
                None => v,
            });
        }
    }
    acc.map(|v| v.to_interval()).filter(|iv| !iv.is_bottom())
}

/// Swaps a condition's operand order: `limit cond counter` expressed as
/// `counter cond' (limit + adjust)`. The ISA has no Gt/Le conditions, so
/// strict/non-strict swaps shift the limit by one instead:
/// `limit < counter ⇔ counter ≥ limit+1` and
/// `limit ≥ counter ⇔ counter < limit+1`.
fn swap_cond(cond: Cond) -> (Cond, i64) {
    match cond {
        Cond::Eq => (Cond::Eq, 0),
        Cond::Ne => (Cond::Ne, 0),
        Cond::Lt => (Cond::Ge, 1),
        Cond::Ge => (Cond::Lt, 1),
        Cond::Ltu => (Cond::Geu, 1),
        Cond::Geu => (Cond::Ltu, 1),
    }
}

/// Number of branch executions until `continue_cond(counter, limit)` first
/// fails, where the counter at the k-th branch execution is
/// `start + (k-1)·step`. Returns `None` if the loop may not terminate
/// within the 32-bit iteration cap.
fn iterations_until_exit(start: i64, step: i64, limit: i64, continue_cond: Cond) -> Option<u64> {
    const CAP: i64 = u32::MAX as i64;
    let holds = |v: i64| -> bool {
        match continue_cond {
            Cond::Eq => v == limit,
            Cond::Ne => v != limit,
            Cond::Lt | Cond::Ltu => v < limit,
            Cond::Ge | Cond::Geu => v >= limit,
        }
    };

    // Closed forms per condition; k counts branch executions (≥ 1).
    let continues: i64 = match continue_cond {
        Cond::Eq => {
            // Continue while equal: only the degenerate step-0 case loops;
            // with a nonzero step it exits after at most one continue.
            if holds(start) {
                1
            } else {
                0
            }
        }
        Cond::Ne => {
            // Continue while different: must step exactly onto the limit.
            let delta = limit - start;
            if delta == 0 {
                0
            } else if delta % step == 0 && delta / step > 0 {
                delta / step
            } else {
                // Steps over/away from the limit: wraps around the 32-bit
                // space — terminates eventually, but only via wraparound.
                return None;
            }
        }
        Cond::Lt | Cond::Ltu => {
            if !holds(start) {
                0
            } else if step <= 0 {
                return None; // moves away: never exits by this test
            } else {
                // Largest k with start + k·step < limit … count of
                // continues = ceil((limit - start)/step) is the first k
                // failing; continues = that k... compute directly:
                (limit - 1 - start) / step + 1
            }
        }
        Cond::Ge | Cond::Geu => {
            if !holds(start) {
                0
            } else if step >= 0 {
                return None;
            } else {
                (start - limit) / (-step) + 1
            }
        }
    };
    if continues > CAP {
        return None;
    }
    // Header executions = continues + the final (exiting) test.
    Some((continues + 1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valueanalysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn bounds(src: &str) -> LoopBounds {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        analyze_function(&p, p.entry, &image).loop_bounds()
    }

    fn single_bound(src: &str) -> BoundResult {
        let b = bounds(src);
        assert_eq!(b.results().len(), 1, "expected exactly one loop");
        b.results()[0].1
    }

    #[test]
    fn count_down_ne_zero() {
        // do { r1-- } while (r1 != 0), r1 = 12 → body runs 12 times.
        let r = single_bound("main: li r1, 12\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert_eq!(r.max_iterations(), Some(12));
    }

    #[test]
    fn count_up_lt_limit() {
        // for (i = 0; i < 10; i++) — header tests first, body runs 10×,
        // header executes 11×.
        let r = single_bound(
            r#"
            main: li r1, 0
                  li r2, 10
            head: bge r1, r2, done
                  addi r1, r1, 1
                  j head
            done: halt
            "#,
        );
        assert_eq!(r.max_iterations(), Some(11));
    }

    #[test]
    fn step_greater_than_one() {
        // for (i = 0; i < 10; i += 3) → i ∈ {0,3,6,9}, header 5×.
        let r = single_bound(
            r#"
            main: li r1, 0
                  li r2, 10
            head: bge r1, r2, done
                  addi r1, r1, 3
                  j head
            done: halt
            "#,
        );
        assert_eq!(r.max_iterations(), Some(5));
    }

    #[test]
    fn float_loop_unbounded_with_rule_13_4_reason() {
        let r = single_bound(
            r#"
            main: li   r1, 0x3f800000
                  fmov f1, r1
                  li   r1, 0x41200000
                  fmov f2, r1
                  fmov f0, r0
            loop: fadd f0, f0, f1
                  fblt f0, f2, loop
                  halt
            "#,
        );
        assert_eq!(
            r,
            BoundResult::Unbounded {
                reason: UnboundedReason::FloatControlled
            }
        );
    }

    #[test]
    fn double_update_unbounded_with_rule_13_6_reason() {
        // The counter is modified twice per iteration.
        let r = single_bound(
            r#"
            main: li r1, 16
            loop: subi r1, r1, 1
                  subi r1, r1, 1
                  bne r1, r0, loop
                  halt
            "#,
        );
        assert_eq!(
            r,
            BoundResult::Unbounded {
                reason: UnboundedReason::ComplexCounterUpdate
            }
        );
    }

    #[test]
    fn data_dependent_loop_unbounded() {
        // r4 is a function argument: unknown initial value.
        let r = single_bound("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert_eq!(
            r,
            BoundResult::Unbounded {
                reason: UnboundedReason::DataDependent
            }
        );
    }

    #[test]
    fn irreducible_loop_reported() {
        let r = single_bound(
            r#"
            main: beq r1, r0, b
            a:    subi r2, r2, 1
                  j b
            b:    addi r2, r2, 1
                  bne r2, r0, a
                  halt
            "#,
        );
        assert_eq!(
            r,
            BoundResult::Unbounded {
                reason: UnboundedReason::Irreducible
            }
        );
    }

    #[test]
    fn infinite_loop_reported() {
        let r = single_bound("main: nop\nspin: j spin");
        assert_eq!(
            r,
            BoundResult::Unbounded {
                reason: UnboundedReason::NoExit
            }
        );
    }

    #[test]
    fn annotation_overrides_unbounded() {
        let mut b = bounds("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        let id = b.results()[0].0;
        assert!(!b.all_bounded());
        b.apply_annotation(id, 64);
        assert!(b.all_bounded());
        assert_eq!(b.bound(id).unwrap().max_iterations(), Some(64));
        assert!(matches!(
            b.bound(id).unwrap(),
            BoundResult::Bounded {
                source: BoundSource::Annotation,
                ..
            }
        ));
    }

    #[test]
    fn nested_loops_both_bounded() {
        let b = bounds(
            r#"
            main: li r1, 3
            outer: li r2, 4
            inner: subi r2, r2, 1
                   bne r2, r0, inner
                   subi r1, r1, 1
                   bne r1, r0, outer
                   halt
            "#,
        );
        assert_eq!(b.results().len(), 2);
        assert!(b.all_bounded());
        let bounds_found: Vec<u64> = b
            .results()
            .iter()
            .filter_map(|(_, r)| r.max_iterations())
            .collect();
        assert!(bounds_found.contains(&3));
        assert!(bounds_found.contains(&4));
    }

    #[test]
    fn interval_init_takes_worst_case() {
        // Counter starts at 5 or 9 depending on a branch: bound must be 9.
        let r = bounds(
            r#"
            main: beq r5, r0, low
                  li r1, 9
                  j go
            low:  li r1, 5
            go:
            loop: subi r1, r1, 1
                  bne r1, r0, loop
                  halt
            "#,
        );
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].1.max_iterations(), Some(9));
    }

    #[test]
    fn counter_on_right_operand() {
        // while (limit > counter) with operands swapped in the branch.
        let r = single_bound(
            r#"
            main: li r1, 0
                  li r2, 6
            head: bge r1, r2, done
                  addi r1, r1, 1
                  j head
            done: halt
            "#,
        );
        assert_eq!(r.max_iterations(), Some(7));
    }

    #[test]
    fn rematerialized_limit_is_value_invariant() {
        // The limit register is reloaded with the same constant inside
        // the loop body (compilers do this): still boundable.
        let r = single_bound(
            r#"
            main: li r1, 0
            head: li   r7, 9
                  bge  r1, r7, done
                  addi r1, r1, 1
                  j head
            done: halt
            "#,
        );
        assert_eq!(r.max_iterations(), Some(10));
    }

    #[test]
    fn do_while_shape() {
        // Test at the bottom, update before test (do-while): 5 body runs.
        let r = single_bound(
            "main: li r1, 5
body: addi r2, r2, 1
 subi r1, r1, 1
 bne r1, r0, body
 halt",
        );
        assert_eq!(r.max_iterations(), Some(5));
    }

    #[test]
    fn limit_changing_value_stays_unbounded() {
        // The "limit" genuinely changes every iteration: must NOT be
        // treated as invariant.
        let r = single_bound(
            r#"
            main: li r1, 0
                  li r7, 100
            head: bge r1, r7, done
                  addi r1, r1, 1
                  subi r7, r7, 3
                  j head
            done: halt
            "#,
        );
        // Both registers are updated: no counter/limit split exists.
        assert!(r.max_iterations().is_none());
    }

    #[test]
    fn swapped_operands_ge_limit_is_sound() {
        // while (limit >= counter): branch is `bge r2, r1, body` with the
        // counter on the right — exercises the +1 limit adjustment.
        // counter 0..=6 continues (7 continues), header executes 8 times.
        let r = single_bound(
            r#"
            main: li r1, 0
                  li r2, 6
            head: bge r2, r1, body
                  j done
            body: addi r1, r1, 1
                  j head
            done: halt
            "#,
        );
        assert_eq!(r.max_iterations(), Some(8));
    }
}
