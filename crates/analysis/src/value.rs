//! The value domain: a reduced product of small constant sets and
//! intervals.
//!
//! Small finite sets keep jump-table targets and mode discriminators
//! *exact* — which is what lets the analysis resolve function pointers
//! (tier-one challenge) — while intervals cover counters and address
//! ranges. Once a set outgrows [`SET_LIMIT`] it degrades to its interval
//! hull.

use std::collections::BTreeSet;
use std::fmt;

use crate::interval::Interval;

/// Maximum cardinality tracked exactly before degrading to an interval.
pub const SET_LIMIT: usize = 8;

/// An abstract 32-bit machine word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unreachable (no concrete value).
    Bot,
    /// Exactly one of these values (at most [`SET_LIMIT`] of them,
    /// non-empty).
    Set(BTreeSet<u32>),
    /// Any value in the interval (kept non-singleton and non-bottom;
    /// singletons normalize to `Set`).
    Range(Interval),
}

impl Value {
    /// The unknown value (full range).
    #[must_use]
    pub fn top() -> Value {
        Value::Range(Interval::TOP)
    }

    /// A known constant.
    #[must_use]
    pub fn constant(v: u32) -> Value {
        Value::Set(BTreeSet::from([v]))
    }

    /// A set of possible constants.
    ///
    /// Degrades to the interval hull if more than [`SET_LIMIT`] values
    /// are supplied; normalizes the empty set to bottom.
    #[must_use]
    pub fn from_set(set: BTreeSet<u32>) -> Value {
        if set.is_empty() {
            Value::Bot
        } else if set.len() > SET_LIMIT {
            let lo = *set.iter().next().expect("nonempty");
            let hi = *set.iter().next_back().expect("nonempty");
            Value::Range(Interval::new(lo, hi))
        } else {
            Value::Set(set)
        }
    }

    /// A value known only by its interval. Narrow intervals (width at
    /// most [`SET_LIMIT`]) are enumerated into exact sets — this is what
    /// lets a bounded jump-table index `[0, n)` flow through address
    /// arithmetic and a table load into a *finite set of code addresses*,
    /// resolving the function pointer.
    #[must_use]
    pub fn from_interval(iv: Interval) -> Value {
        if iv.is_bottom() {
            Value::Bot
        } else if let Some(c) = iv.as_constant() {
            Value::constant(c)
        } else if iv.width() <= SET_LIMIT as u64 {
            let lo = iv.lo().expect("non-bottom");
            let hi = iv.hi().expect("non-bottom");
            Value::Set((lo..=hi).collect())
        } else {
            Value::Range(iv)
        }
    }

    /// Returns true if no concrete value is possible.
    #[must_use]
    pub fn is_bot(&self) -> bool {
        matches!(self, Value::Bot)
    }

    /// Returns true if the value is completely unknown.
    #[must_use]
    pub fn is_top(&self) -> bool {
        matches!(self, Value::Range(iv) if iv.is_top())
    }

    /// The single possible value, if exactly one.
    #[must_use]
    pub fn as_constant(&self) -> Option<u32> {
        match self {
            Value::Set(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// The exact finite set of possible values, if tracked.
    #[must_use]
    pub fn as_set(&self) -> Option<&BTreeSet<u32>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// The interval hull of the value.
    #[must_use]
    pub fn to_interval(&self) -> Interval {
        match self {
            Value::Bot => Interval::BOTTOM,
            Value::Set(s) => {
                let lo = *s.iter().next().expect("invariant: nonempty");
                let hi = *s.iter().next_back().expect("invariant: nonempty");
                Interval::new(lo, hi)
            }
            Value::Range(iv) => *iv,
        }
    }

    /// Returns true if `v` may be the concrete value.
    #[must_use]
    pub fn may_be(&self, v: u32) -> bool {
        match self {
            Value::Bot => false,
            Value::Set(s) => s.contains(&v),
            Value::Range(iv) => iv.contains(v),
        }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Bot, v) | (v, Value::Bot) => v.clone(),
            (Value::Set(a), Value::Set(b)) => {
                let union: BTreeSet<u32> = a.union(b).copied().collect();
                Value::from_set(union)
            }
            _ => Value::from_interval(self.to_interval().join(other.to_interval())),
        }
    }

    /// Widening: sets that keep growing degrade to intervals, intervals
    /// widen to the domain bounds.
    #[must_use]
    pub fn widen(&self, next: &Value) -> Value {
        match (self, next) {
            (Value::Bot, v) => v.clone(),
            (v, Value::Bot) => v.clone(),
            (Value::Set(a), Value::Set(b)) if b.is_subset(a) => self.clone(),
            _ => Value::from_interval(self.to_interval().widen(next.to_interval())),
        }
    }

    /// Returns true if every concrete value of `self` is allowed by
    /// `other` (the domain partial order).
    #[must_use]
    pub fn is_subsumed_by(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bot, _) => true,
            (_, Value::Bot) => false,
            (Value::Set(a), Value::Set(b)) => a.is_subset(b),
            (Value::Set(a), Value::Range(iv)) => a.iter().all(|&v| iv.contains(v)),
            (Value::Range(_), Value::Set(_)) => false,
            (Value::Range(a), Value::Range(b)) => a.is_subset(b),
        }
    }

    /// Applies a binary 32-bit operation pointwise where exact sets allow,
    /// falling back to the supplied interval transformer.
    #[must_use]
    pub fn lift_binop(
        &self,
        other: &Value,
        exact: impl Fn(u32, u32) -> u32,
        approx: impl Fn(Interval, Interval) -> Interval,
    ) -> Value {
        match (self, other) {
            (Value::Bot, _) | (_, Value::Bot) => Value::Bot,
            (Value::Set(a), Value::Set(b)) if a.len() * b.len() <= SET_LIMIT * SET_LIMIT => {
                let mut out = BTreeSet::new();
                for &x in a {
                    for &y in b {
                        out.insert(exact(x, y));
                    }
                }
                Value::from_set(out)
            }
            _ => Value::from_interval(approx(self.to_interval(), other.to_interval())),
        }
    }
}

impl Value {
    /// Absorbs the value into a stable hasher (the incremental engine's
    /// context-entry digests; `std::hash` makes no cross-process
    /// promise).
    pub fn digest_into(&self, h: &mut wcet_isa::hash::StableHasher) {
        match self {
            Value::Bot => h.write_u32(0),
            Value::Set(s) => {
                h.write_u32(1);
                h.write_usize(s.len());
                for &v in s {
                    h.write_u32(v);
                }
            }
            Value::Range(iv) => {
                h.write_u32(2);
                h.write_u32(iv.lo().unwrap_or(1));
                h.write_u32(iv.hi().unwrap_or(0));
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bot => f.write_str("⊥"),
            Value::Set(s) => {
                let items: Vec<String> = s.iter().map(|v| format!("0x{v:x}")).collect();
                write!(f, "{{{}}}", items.join(", "))
            }
            Value::Range(iv) => write!(f, "{iv}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert!(Value::from_set(BTreeSet::new()).is_bot());
        let big: BTreeSet<u32> = (0..20).collect();
        assert!(matches!(Value::from_set(big), Value::Range(_)));
        assert_eq!(
            Value::from_interval(Interval::constant(3)),
            Value::constant(3)
        );
    }

    #[test]
    fn join_of_sets_stays_exact_when_small() {
        let a = Value::from_set(BTreeSet::from([1, 2]));
        let b = Value::from_set(BTreeSet::from([5]));
        let j = a.join(&b);
        assert_eq!(j.as_set().unwrap().len(), 3);
        assert!(j.may_be(5));
        assert!(!j.may_be(3));
    }

    #[test]
    fn join_degrades_gracefully() {
        let a = Value::from_set((0..SET_LIMIT as u32).collect());
        let b = Value::constant(100);
        let j = a.join(&b);
        // 9 elements exceeds the limit → interval hull.
        assert!(matches!(j, Value::Range(_)));
        assert!(j.may_be(50), "hull includes intermediate values");
    }

    #[test]
    fn exact_binop_on_sets() {
        let a = Value::from_set(BTreeSet::from([1, 2]));
        let b = Value::from_set(BTreeSet::from([10, 20]));
        let sum = a.lift_binop(&b, |x, y| x + y, super::super::interval::Interval::add);
        assert_eq!(sum.as_set().unwrap(), &BTreeSet::from([11, 12, 21, 22]));
    }

    #[test]
    fn partial_order_sanity() {
        let small = Value::constant(5);
        let range = Value::from_interval(Interval::new(0, 10));
        assert!(small.is_subsumed_by(&range));
        assert!(!range.is_subsumed_by(&small));
        assert!(Value::Bot.is_subsumed_by(&small));
    }

    proptest! {
        /// Join is an upper bound for both operands.
        #[test]
        fn prop_join_upper_bound(a in 0u32..1000, b in 0u32..1000, c in 0u32..1000) {
            let x = Value::from_set(BTreeSet::from([a, b]));
            let y = Value::constant(c);
            let j = x.join(&y);
            prop_assert!(x.is_subsumed_by(&j));
            prop_assert!(y.is_subsumed_by(&j));
        }

        /// Widening subsumes join (it only ever loses precision).
        #[test]
        fn prop_widen_subsumes_join(a in 0u32..1000, b in 0u32..1000) {
            let x = Value::constant(a);
            let y = Value::constant(b);
            let j = x.join(&y);
            let w = x.widen(&y);
            prop_assert!(j.is_subsumed_by(&w));
        }

        /// Exact binop soundness: every concrete pair's result is contained.
        #[test]
        fn prop_binop_sound(a in 0u32..500, b in 0u32..500) {
            let x = Value::constant(a);
            let y = Value::constant(b);
            let sum = x.lift_binop(&y, u32::wrapping_add, super::super::interval::Interval::add);
            prop_assert!(sum.may_be(a.wrapping_add(b)));
        }

        /// may_be is consistent with the interval hull.
        #[test]
        fn prop_hull_contains_set(vals in proptest::collection::btree_set(0u32..10_000, 1..6)) {
            let v = Value::from_set(vals.clone());
            let hull = v.to_interval();
            for x in vals {
                prop_assert!(hull.contains(x));
            }
        }
    }
}
