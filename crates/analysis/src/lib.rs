//! # wcet-analysis — loop and value analysis
//!
//! The "Loop/Value Analysis" phase of the paper's Figure 1: an abstract-
//! interpretation value analysis over a reduced product of small constant
//! sets and unsigned intervals, and on top of it
//!
//! * loop-bound detection in the style the paper cites (Cullmann–Martin
//!   data-flow based detection \[4\], Ermedahl et al. \[5\]) — integer
//!   counter loops are bounded automatically, floating-point controlled
//!   loops (MISRA rule 13.4) and complex counter updates (rule 13.6) are
//!   reported with a machine-readable *reason*,
//! * address analysis for every memory access — the input to the paper's
//!   "imprecise memory accesses" discussion (Section 4.3),
//! * indirect-target resolution: when the value of a call/jump register is
//!   a small finite set (e.g. loaded from a jump table), the analysis
//!   emits a [`wcet_cfg::TargetResolver`] so control-flow reconstruction
//!   can be repeated with the function pointers resolved (tier-one
//!   challenge of Section 3.2).
//!
//! # Example
//!
//! ```
//! use wcet_isa::asm::assemble;
//! use wcet_cfg::graph::{reconstruct, TargetResolver};
//! use wcet_analysis::analyze_function;
//! use wcet_analysis::loopbound::BoundResult;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "main: li r1, 12\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
//! )?;
//! let program = reconstruct(&image, &TargetResolver::empty())?;
//! let analysis = analyze_function(&program, program.entry, &image);
//! let bounds = analysis.loop_bounds();
//! assert!(matches!(
//!     bounds.results()[0].1,
//!     BoundResult::Bounded { max_iterations: 12, .. }
//! ));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod interval;
pub mod loopbound;
pub mod state;
pub mod value;
pub mod valueanalysis;

pub use interval::Interval;
pub use value::Value;
pub use valueanalysis::{analyze_function, FunctionAnalysis};
