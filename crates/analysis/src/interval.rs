//! Unsigned 32-bit intervals — the numeric half of the value domain.
//!
//! Values are machine words; the interval tracks them as *unsigned*
//! `[lo, hi] ⊆ [0, 2³²-1]`. Signed comparisons convert on demand (and go
//! to top when the interval straddles the sign boundary). Arithmetic that
//! could wrap degrades to top rather than producing an unsound range.

use std::fmt;

const UMAX: i64 = u32::MAX as i64;

/// An unsigned interval over 32-bit machine words, plus bottom.
///
/// # Example
///
/// ```
/// use wcet_analysis::Interval;
/// let a = Interval::new(2, 5);
/// let b = Interval::constant(10);
/// assert_eq!(a.add(b), Interval::new(12, 15));
/// assert!(a.join(b).contains(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound (inclusive). `lo > hi` encodes bottom.
    lo: i64,
    /// Upper bound (inclusive).
    hi: i64,
}

#[allow(clippy::should_implement_trait)] // domain ops, not std::ops arithmetic
impl Interval {
    /// The empty interval (unreachable value).
    pub const BOTTOM: Interval = Interval { lo: 1, hi: 0 };
    /// The full interval: any 32-bit word.
    pub const TOP: Interval = Interval { lo: 0, hi: UMAX };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are outside `0..=u32::MAX` or `lo > hi`.
    #[must_use]
    pub fn new(lo: u32, hi: u32) -> Interval {
        assert!(lo <= hi, "interval bounds inverted: [{lo}, {hi}]");
        Interval {
            lo: i64::from(lo),
            hi: i64::from(hi),
        }
    }

    /// The singleton interval `[v, v]`.
    #[must_use]
    pub fn constant(v: u32) -> Interval {
        Interval {
            lo: i64::from(v),
            hi: i64::from(v),
        }
    }

    /// Returns true if this is the empty interval.
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns true if this is the full interval.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == UMAX
    }

    /// The single contained value, if the interval is a singleton.
    #[must_use]
    pub fn as_constant(&self) -> Option<u32> {
        if !self.is_bottom() && self.lo == self.hi {
            Some(self.lo as u32)
        } else {
            None
        }
    }

    /// Lower bound (unsigned). `None` for bottom.
    #[must_use]
    pub fn lo(&self) -> Option<u32> {
        if self.is_bottom() {
            None
        } else {
            Some(self.lo as u32)
        }
    }

    /// Upper bound (unsigned). `None` for bottom.
    #[must_use]
    pub fn hi(&self) -> Option<u32> {
        if self.is_bottom() {
            None
        } else {
            Some(self.hi as u32)
        }
    }

    /// Number of values in the interval (0 for bottom).
    #[must_use]
    pub fn width(&self) -> u64 {
        if self.is_bottom() {
            0
        } else {
            (self.hi - self.lo + 1) as u64
        }
    }

    /// Returns true if `v` lies in the interval.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        !self.is_bottom() && self.lo <= i64::from(v) && i64::from(v) <= self.hi
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        if self.is_bottom() {
            return other;
        }
        if other.is_bottom() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound.
    #[must_use]
    pub fn meet(self, other: Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        Interval { lo, hi }
    }

    /// Standard interval widening: bounds that grew jump to the domain
    /// extremes, guaranteeing fixpoint termination.
    #[must_use]
    pub fn widen(self, next: Interval) -> Interval {
        if self.is_bottom() {
            return next;
        }
        if next.is_bottom() {
            return self;
        }
        Interval {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { UMAX } else { self.hi },
        }
    }

    /// Returns true if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &Interval) -> bool {
        self.is_bottom() || (!other.is_bottom() && other.lo <= self.lo && self.hi <= other.hi)
    }

    fn lift(lo: i64, hi: i64) -> Interval {
        if lo < 0 || hi > UMAX {
            // Could wrap: sound but imprecise.
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }

    /// Addition. The machine adds modulo 2³²; when *every* concrete sum
    /// wraps (the whole `[lo, hi]` window lies past 2³²), the wrapped
    /// window is exact and is returned instead of ⊤. This is what keeps
    /// `addi rd, rs, -1` — the RV32I spelling of `subi rd, rs, 1`, whose
    /// immediate enters the domain as `0xffff_ffff` — a precise
    /// decrement. Only a *partial* wrap (the window straddles 2³²) is
    /// approximated as ⊤.
    #[must_use]
    pub fn add(self, rhs: Interval) -> Interval {
        if self.is_bottom() || rhs.is_bottom() {
            return Interval::BOTTOM;
        }
        let (lo, hi) = (self.lo + rhs.lo, self.hi + rhs.hi);
        if lo > UMAX {
            // Both ends past 2³² (hi ≤ 2·(2³²−1) for valid inputs).
            return Interval::lift(lo - (UMAX + 1), hi - (UMAX + 1));
        }
        Interval::lift(lo, hi)
    }

    /// Subtraction, with the same full-wrap precision as [`Interval::add`]:
    /// a window entirely below zero is exactly its modulo-2³² image.
    #[must_use]
    pub fn sub(self, rhs: Interval) -> Interval {
        if self.is_bottom() || rhs.is_bottom() {
            return Interval::BOTTOM;
        }
        let (lo, hi) = (self.lo - rhs.hi, self.hi - rhs.lo);
        if hi < 0 {
            // Both ends below zero (lo ≥ −(2³²−1) for valid inputs).
            return Interval::lift(lo + UMAX + 1, hi + UMAX + 1);
        }
        Interval::lift(lo, hi)
    }

    /// Multiplication, with the same full-wrap precision as
    /// [`Interval::add`]/[`Interval::sub`]: when the whole product window
    /// lands in a single 2³²-lap, its modulo-2³² image is a contiguous
    /// window and is returned exactly — `(1 << 20) · (1 << 20)` is a
    /// precise 0, not ⊤. Only a window straddling a lap boundary (whose
    /// image would be a disjoint pair of ranges) widens to ⊤.
    #[must_use]
    pub fn mul(self, rhs: Interval) -> Interval {
        if self.is_bottom() || rhs.is_bottom() {
            return Interval::BOTTOM;
        }
        // i128 avoids overflow for the extreme products (2³² · 2³²).
        let candidates = [
            i128::from(self.lo) * i128::from(rhs.lo),
            i128::from(self.lo) * i128::from(rhs.hi),
            i128::from(self.hi) * i128::from(rhs.lo),
            i128::from(self.hi) * i128::from(rhs.hi),
        ];
        let lo = candidates.iter().copied().min().expect("nonempty");
        let hi = candidates.iter().copied().max().expect("nonempty");
        // Operands are u32 values, so every candidate is nonnegative;
        // `lo >> 32 == hi >> 32` puts the whole window in one lap.
        if lo >> 32 == hi >> 32 {
            Interval {
                lo: (lo & i128::from(UMAX)) as i64,
                hi: (hi & i128::from(UMAX)) as i64,
            }
        } else {
            Interval::TOP
        }
    }

    /// Left shift by a constant amount.
    #[must_use]
    pub fn shl_const(self, amount: u32) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        let amount = amount & 31;
        Interval::lift(self.lo << amount, self.hi << amount)
    }

    /// Logical right shift by a constant amount (always exact).
    #[must_use]
    pub fn shr_const(self, amount: u32) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        let amount = amount & 31;
        Interval {
            lo: self.lo >> amount,
            hi: self.hi >> amount,
        }
    }

    /// Restricts the interval to values `cond`-related to `bound`
    /// (unsigned comparisons only; used for branch refinement).
    #[must_use]
    pub fn refine_ltu(self, bound: Interval) -> Interval {
        if self.is_bottom() || bound.is_bottom() {
            return Interval::BOTTOM;
        }
        // self < bound ⇒ self ≤ bound.hi - 1.
        self.meet(Interval {
            lo: 0,
            hi: bound.hi - 1,
        })
    }

    /// Restricts to values unsigned-greater-or-equal to `bound`.
    #[must_use]
    pub fn refine_geu(self, bound: Interval) -> Interval {
        if self.is_bottom() || bound.is_bottom() {
            return Interval::BOTTOM;
        }
        self.meet(Interval {
            lo: bound.lo,
            hi: UMAX,
        })
    }

    /// The signed view `[lo, hi]` as `i32` bounds, if the interval does
    /// not straddle the sign boundary.
    #[must_use]
    pub fn signed_bounds(&self) -> Option<(i32, i32)> {
        if self.is_bottom() {
            return None;
        }
        let lo = self.lo as u32;
        let hi = self.hi as u32;
        let slo = lo as i32;
        let shi = hi as i32;
        // Monotone reinterpretation only when both halves are on the same
        // side of the sign boundary.
        if (lo <= i32::MAX as u32) == (hi <= i32::MAX as u32) {
            Some((slo, shi))
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            f.write_str("⊥")
        } else if self.is_top() {
            f.write_str("⊤")
        } else if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_interval() -> impl Strategy<Value = Interval> {
        prop_oneof![
            Just(Interval::BOTTOM),
            Just(Interval::TOP),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b))),
        ]
    }

    proptest! {
        /// Lattice laws: join is commutative, idempotent, and an upper
        /// bound; meet is the dual.
        #[test]
        fn prop_lattice_laws(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.join(b), b.join(a));
            prop_assert_eq!(a.join(a), a);
            prop_assert!(a.is_subset(&a.join(b)));
            prop_assert!(b.is_subset(&a.join(b)));
            prop_assert_eq!(a.meet(b), b.meet(a));
            prop_assert!(a.meet(b).is_subset(&a));
            prop_assert!(a.meet(b).is_subset(&b));
        }

        /// Absorption: a ⊓ (a ⊔ b) = a and a ⊔ (a ⊓ b) = a.
        #[test]
        fn prop_absorption(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.meet(a.join(b)), a);
            prop_assert_eq!(a.join(a.meet(b)), a);
        }

        /// Arithmetic soundness: concrete members stay inside results.
        #[test]
        fn prop_arith_sound(
            al in 0u32..1000, aw in 0u32..1000, ai in 0u32..1000,
            bl in 0u32..1000, bw in 0u32..1000, bi in 0u32..1000,
        ) {
            let a = Interval::new(al, al + aw);
            let b = Interval::new(bl, bl + bw);
            let x = al + (ai % (aw + 1));
            let y = bl + (bi % (bw + 1));
            prop_assert!(a.add(b).contains(x.wrapping_add(y)));
            prop_assert!(a.mul(b).contains(x.wrapping_mul(y)));
            if x >= y {
                prop_assert!(a.sub(b).contains(x - y) || a.sub(b).is_top());
            }
        }

        /// Widening is an upper bound of both arguments and reaches a
        /// fixpoint in at most two steps per bound direction.
        #[test]
        fn prop_widen_sound_and_terminates(a in arb_interval(), b in arb_interval()) {
            let w = a.widen(b);
            prop_assert!(a.is_subset(&w));
            prop_assert!(b.is_subset(&w));
            // Widening again with anything inside w is stable.
            prop_assert_eq!(w.widen(w), w);
        }
    }

    #[test]
    fn constructors_and_queries() {
        let c = Interval::constant(7);
        assert_eq!(c.as_constant(), Some(7));
        assert_eq!(c.width(), 1);
        assert!(Interval::BOTTOM.is_bottom());
        assert_eq!(Interval::BOTTOM.width(), 0);
        assert!(Interval::TOP.is_top());
        assert_eq!(Interval::TOP.width(), 1 << 32);
    }

    #[test]
    fn join_meet_lattice() {
        let a = Interval::new(1, 5);
        let b = Interval::new(3, 9);
        assert_eq!(a.join(b), Interval::new(1, 9));
        assert_eq!(a.meet(b), Interval::new(3, 5));
        assert!(Interval::new(6, 9).meet(Interval::new(1, 5)).is_bottom());
        assert_eq!(a.join(Interval::BOTTOM), a);
        assert_eq!(a.meet(Interval::TOP), a);
    }

    #[test]
    fn arithmetic_precision() {
        let a = Interval::new(2, 4);
        let b = Interval::new(10, 20);
        assert_eq!(a.add(b), Interval::new(12, 24));
        assert_eq!(b.sub(a), Interval::new(6, 18));
        assert_eq!(a.mul(a), Interval::new(4, 16));
    }

    #[test]
    fn full_wraps_reduce_partial_wraps_go_to_top() {
        // Machine arithmetic is wrapping u32, so a window that wraps
        // *entirely* reduces modulo 2³² exactly — this is what keeps
        // `addi rd, rs, -1` (the RV32I spelling of `subi`, immediate
        // 0xffff_ffff in the domain) a precise decrement.
        let near_max = Interval::new(u32::MAX - 1, u32::MAX);
        assert_eq!(near_max.add(Interval::constant(5)), Interval::new(3, 4));
        assert_eq!(
            Interval::constant(0).sub(Interval::constant(1)),
            Interval::constant(u32::MAX)
        );
        assert_eq!(
            Interval::constant(7).add(Interval::constant(u32::MAX)),
            Interval::constant(6)
        );
        // A window that only *partly* wraps would be a disjoint pair of
        // ranges — not representable, so it widens to TOP.
        let straddling = Interval::new(u32::MAX - 1, u32::MAX).add(Interval::new(0, 5));
        assert!(straddling.is_top());
        assert!(Interval::new(0, 1).sub(Interval::constant(1)).is_top());
        // Multiplication reduces full wraps the same way: 2²⁰ · 2²⁰ =
        // 2⁴⁰ ≡ 0 (mod 2³²), a single point in one lap — exact.
        assert_eq!(
            Interval::constant(1 << 20).mul(Interval::constant(1 << 20)),
            Interval::constant(0)
        );
        // A wider wrapping product window stays exact while it fits one
        // lap: [2³¹, 2³¹+4] · 2 = [2³², 2³²+8] ≡ [0, 8].
        assert_eq!(
            Interval::new(1 << 31, (1 << 31) + 4).mul(Interval::constant(2)),
            Interval::new(0, 8)
        );
        // A product window straddling a lap boundary would be a disjoint
        // pair of ranges — not representable, so it widens to TOP.
        assert!(Interval::new((1 << 31) - 1, 1 << 31)
            .mul(Interval::constant(2))
            .is_top());
        // The extreme corner: MAX · MAX = (2³²−1)² wraps to exactly 1.
        assert_eq!(
            Interval::constant(u32::MAX).mul(Interval::constant(u32::MAX)),
            Interval::constant(1)
        );
    }

    #[test]
    fn widening_terminates_and_is_sound() {
        let mut cur = Interval::constant(0);
        // A growing chain: widening must reach a fixpoint quickly.
        for i in 1..100u32 {
            let next = cur.join(Interval::constant(i));
            let widened = cur.widen(next);
            if widened == cur {
                break;
            }
            cur = widened;
        }
        assert!(cur.contains(0));
        assert!(cur.hi().unwrap() == u32::MAX, "upper bound widened to max");
    }

    #[test]
    fn shifts() {
        let a = Interval::new(1, 3);
        assert_eq!(a.shl_const(4), Interval::new(16, 48));
        assert_eq!(Interval::new(16, 48).shr_const(4), Interval::new(1, 3));
        // Shifting into wrap territory → top.
        assert!(Interval::constant(0x8000_0000).shl_const(1).is_top());
    }

    #[test]
    fn refinement() {
        let x = Interval::new(0, 100);
        assert_eq!(x.refine_ltu(Interval::constant(10)), Interval::new(0, 9));
        assert_eq!(x.refine_geu(Interval::constant(90)), Interval::new(90, 100));
        assert!(Interval::constant(5)
            .refine_geu(Interval::constant(6))
            .is_bottom());
    }

    #[test]
    fn signed_bounds() {
        assert_eq!(Interval::new(1, 5).signed_bounds(), Some((1, 5)));
        assert_eq!(Interval::constant(u32::MAX).signed_bounds(), Some((-1, -1)));
        // Straddles the sign boundary.
        assert_eq!(
            Interval::new(0x7fff_ffff, 0x8000_0000).signed_bounds(),
            None
        );
    }

    #[test]
    fn subset_relation() {
        assert!(Interval::new(2, 3).is_subset(&Interval::new(1, 5)));
        assert!(!Interval::new(0, 9).is_subset(&Interval::new(1, 5)));
        assert!(Interval::BOTTOM.is_subset(&Interval::constant(1)));
    }
}
