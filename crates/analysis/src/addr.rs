//! Address analysis: memory-access targets and indirect-branch resolution.
//!
//! Two consumers:
//!
//! * the cache/pipeline analysis needs, for every load and store, the set
//!   of addresses it may touch — an unknown address forces the worst
//!   memory latency and wrecks the abstract data cache ("imprecise memory
//!   accesses", Section 4.3);
//! * control-flow reconstruction needs targets for indirect calls and
//!   jumps (function pointers, Section 3.2). When the value analysis pins
//!   the target register to a small set — typically loaded from a jump
//!   table in the data segment — this module emits a
//!   [`TargetResolver`] and the analyzer re-runs reconstruction.

use std::collections::BTreeMap;

use wcet_cfg::TargetResolver;
use wcet_isa::{Addr, Inst};

use crate::value::Value;
use crate::valueanalysis::FunctionAnalysis;

/// The abstract address of every load/store in the function, keyed by
/// instruction address.
#[must_use]
pub fn access_values(fa: &FunctionAnalysis) -> BTreeMap<Addr, Value> {
    let mut out = BTreeMap::new();
    for (id, block) in fa.cfg().iter() {
        let Some(mut state) = fa.block_in(id).cloned() else {
            continue;
        };
        for (ia, inst) in &block.insts {
            match inst {
                Inst::Load { base, offset, .. } | Inst::Store { base, offset, .. } => {
                    let addr = state.reg(*base).lift_binop(
                        &Value::constant(*offset as u32),
                        u32::wrapping_add,
                        crate::interval::Interval::add,
                    );
                    // Blocks can be duplicated by virtual unrolling; keep
                    // the *least precise* (joined) address per site so the
                    // result is sound for every context.
                    out.entry(*ia)
                        .and_modify(|v: &mut Value| *v = v.join(&addr))
                        .or_insert(addr);
                }
                _ => {}
            }
            fa.transfer_inst(&mut state, *inst);
        }
    }
    out
}

/// Indirect-control-flow targets recovered by the value analysis: for
/// every `callr`/`jr` whose register holds a small exact set of code
/// addresses, emit those targets.
#[must_use]
pub fn resolver_hints(fa: &FunctionAnalysis) -> TargetResolver {
    let mut resolver = TargetResolver::empty();
    for (id, block) in fa.cfg().iter() {
        let Some(mut state) = fa.block_in(id).cloned() else {
            continue;
        };
        for (ia, inst) in &block.insts {
            match inst {
                Inst::CallInd { rs } => {
                    if let Some(set) = state.reg(*rs).as_set() {
                        resolver.add_call_targets(*ia, set.iter().map(|&t| Addr(t)));
                    }
                }
                Inst::JumpInd { rs } => {
                    if let Some(set) = state.reg(*rs).as_set() {
                        resolver.add_jump_targets(*ia, set.iter().map(|&t| Addr(t)));
                    }
                }
                _ => {}
            }
            fa.transfer_inst(&mut state, *inst);
        }
    }
    resolver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valueanalysis::analyze_function;
    use wcet_cfg::graph::reconstruct;
    use wcet_isa::asm::assemble;
    use wcet_isa::Image;

    fn analyze(src: &str) -> (Image, FunctionAnalysis) {
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        (image, fa)
    }

    #[test]
    fn constant_access_address() {
        let (_, fa) = analyze("main: li r1, 0x200\n lw r2, 8(r1)\n halt");
        let accesses = access_values(&fa);
        assert_eq!(accesses.len(), 1);
        let v = accesses.values().next().unwrap();
        assert_eq!(v.as_constant(), Some(0x208));
    }

    #[test]
    fn unknown_access_address_is_top() {
        let (_, fa) = analyze("main: lw r2, 0(r4)\n halt");
        let accesses = access_values(&fa);
        assert!(accesses.values().next().unwrap().is_top());
    }

    #[test]
    fn alloc_based_access_is_heap_ranged() {
        let (_, fa) = analyze("main: li r1, 16\n alloc r2, r1\n sw r0, 4(r2)\n halt");
        let accesses = access_values(&fa);
        let v = accesses.values().next().unwrap();
        assert!(!v.is_top());
        assert!(v.may_be(0x2000_0004));
        assert!(!v.may_be(0x1000));
    }

    #[test]
    fn function_pointer_from_jump_table_resolved() {
        // A two-entry function-pointer table in the data segment; the
        // selector picks one of the two entries.
        let (image, fa) = analyze(
            r#"
            .data 0x5000 0, 0
            main: la   r1, table_patch  # placeholder; real test pokes below
                  halt
            table_patch: nop
            "#,
        );
        let _ = (image, fa); // structural placeholder; the meaningful case:

        // Build a program whose handler addresses are written as data and
        // loaded through a computed index.
        let src = r#"
            main: li  r1, 0x5000
                  beq r4, r0, second
                  lw  r2, 0(r1)
                  j   go
            second:
                  lw  r2, 4(r1)
            go:   callr r2
                  halt
            h1:   ret
            h2:   ret
        "#;
        let mut image = assemble(src).unwrap();
        let h1 = image.symbol("h1").unwrap();
        let h2 = image.symbol("h2").unwrap();
        image.data.push(wcet_isa::image::Segment::from_words(
            Addr(0x5000),
            &[h1.0, h2.0],
        ));
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        assert_eq!(p.unresolved_sites().len(), 1, "callr initially unresolved");

        let fa = analyze_function(&p, p.entry, &image);
        let hints = resolver_hints(&fa);
        assert_eq!(hints.call_targets.len(), 1);
        let targets = hints.call_targets.values().next().unwrap();
        assert!(targets.contains(&h1) && targets.contains(&h2));

        // Re-reconstruction with the hints resolves the call.
        let p2 = reconstruct(&image, &hints).unwrap();
        assert!(p2.unresolved_sites().is_empty());
        assert!(p2.cfg(h1).is_some() && p2.cfg(h2).is_some());
    }
}
