//! Transfer-function soundness: for every ALU operation and every
//! concrete operand pair drawn from the abstract operands, the concrete
//! result must be contained in the abstract result. This is the local
//! correctness obligation that makes the whole value analysis sound.

use proptest::prelude::*;

use wcet_analysis::{Interval, Value};
use wcet_cfg::graph::{reconstruct, TargetResolver};
use wcet_isa::asm::assemble;
use wcet_isa::{AluOp, Reg};

/// A random abstract value together with one concrete member.
fn abstract_with_member() -> impl Strategy<Value = (Value, u32)> {
    prop_oneof![
        // Constant.
        any::<u32>().prop_map(|v| (Value::constant(v), v)),
        // Small set.
        (
            proptest::collection::btree_set(any::<u32>(), 1..5),
            any::<prop::sample::Index>()
        )
            .prop_map(|(set, idx)| {
                let member = *idx.get(&set.iter().copied().collect::<Vec<_>>());
                (Value::from_set(set), member)
            }),
        // Interval.
        (any::<u32>(), 0u32..10_000, any::<prop::sample::Index>()).prop_map(|(lo, span, idx)| {
            let lo = lo.min(u32::MAX - span);
            let hi = lo + span;
            let member = lo + (idx.index(span as usize + 1) as u32);
            (Value::from_interval(Interval::new(lo, hi)), member)
        }),
        // Top.
        any::<u32>().prop_map(|v| (Value::top(), v)),
    ]
}

fn all_ops() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// γ-soundness of the ALU transfer: op(a, b) ∈ γ(op♯(â, b̂)) whenever
    /// a ∈ γ(â) and b ∈ γ(b̂). Exercised through the real analysis by
    /// running a one-instruction program with the operands pinned via a
    /// two-register program... kept direct here through `lift_binop` plus
    /// the analysis' own interval transformers via a tiny program.
    #[test]
    fn prop_alu_transfer_sound(
        op in all_ops(),
        (va, a) in abstract_with_member(),
        (vb, b) in abstract_with_member(),
    ) {
        // The generic exact/approx lift used by the analysis: the exact
        // path must match the machine op; the approx path is exercised
        // through the full fixpoint below for a few shapes. Here we check
        // the public invariant directly.
        let out = va.lift_binop(&vb, |x, y| op.apply(x, y), |x, y| {
            // The weakest sound approximation: full range. lift_binop's
            // own set path must still produce supersets of the concrete
            // result; the analysis' sharper interval transformers are
            // covered by `prop_fixpoint_contains_concrete`.
            let _ = (x, y);
            Interval::TOP
        });
        let concrete = op.apply(a, b);
        prop_assert!(
            out.may_be(concrete),
            "{op:?}: {a} op {b} = {concrete} not in {out}"
        );
    }

    /// End-to-end containment: run the real value analysis on a program
    /// computing `r3 = r1 op r2` from unknown inputs refined by bounds
    /// checks, then execute concretely — the concrete register values
    /// must be inside the analysis' final state.
    #[test]
    fn prop_fixpoint_contains_concrete(
        op in all_ops(),
        a in 0u32..50,
        b in 0u32..50,
    ) {
        // r10/r11 are the unknown inputs; the bltu guards pin them below
        // 50, mirroring how real code bounds its data.
        let src = format!(
            r#"
            main: li   r4, 50
                  bltu r10, r4, ok1
                  li   r10, 0
            ok1:  bltu r11, r4, ok2
                  li   r11, 0
            ok2:  {} r3, r10, r11
                  halt
            "#,
            op.mnemonic()
        );
        let image = assemble(&src).expect("assembles");
        let program = reconstruct(&image, &TargetResolver::empty()).expect("builds");
        let fa = wcet_analysis::analyze_function(&program, program.entry, &image);

        let halt_block = fa
            .cfg()
            .iter()
            .find(|(_, blk)| matches!(blk.term, wcet_cfg::block::Terminator::Halt))
            .expect("halt block")
            .0;
        let state = fa.block_out(halt_block).expect("reachable");

        // Concrete execution with the same inputs.
        let mut interp = wcet_isa::interp::Interpreter::with_config(
            &image,
            wcet_isa::interp::MachineConfig::simple(),
        );
        interp.set_reg(Reg::new(10), a);
        interp.set_reg(Reg::new(11), b);
        interp.run(10_000).expect("halts");
        let concrete = interp.reg(Reg::new(3));

        prop_assert!(
            state.reg(Reg::new(3)).may_be(concrete),
            "{op:?}({a}, {b}) = {concrete} escaped abstract {}",
            state.reg(Reg::new(3))
        );
    }
}
