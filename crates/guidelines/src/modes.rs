//! Operating-mode bookkeeping for mode-specific WCET analysis.
//!
//! "Many embedded control software systems have different operating
//! modes … a static timing analyzer is able to produce much tighter
//! worst-case execution time bounds for each mode of operation
//! separately" (Section 4.3). A [`ModePlan`] packages, per declared mode,
//! the loop bounds and flow facts the path analysis should run with; the
//! comparison against the global (mode-oblivious) bound is experiment E9.

use wcet_analysis::loopbound::LoopBounds;
use wcet_analysis::FunctionAnalysis;
use wcet_path::flowfacts::FlowFact;

use crate::annot::AnnotationSet;

/// The per-mode analysis inputs for one function.
#[derive(Debug, Clone)]
pub struct ModePlan {
    /// Mode name (`None` = the global, mode-oblivious analysis).
    pub mode: Option<String>,
    /// Loop bounds with the mode's annotations applied.
    pub bounds: LoopBounds,
    /// Flow facts active in the mode.
    pub facts: Vec<FlowFact>,
}

/// Builds the global plan plus one plan per declared mode.
#[must_use]
pub fn plans_for(fa: &FunctionAnalysis, annots: &AnnotationSet) -> Vec<ModePlan> {
    let mut plans = Vec::new();
    let mut global_bounds = fa.loop_bounds();
    annots.apply_loop_bounds(fa.cfg(), fa.forest(), &mut global_bounds, None);
    plans.push(ModePlan {
        mode: None,
        bounds: global_bounds,
        facts: annots.flow_facts(fa.cfg(), None),
    });
    for mode in annots.modes() {
        let mut bounds = fa.loop_bounds();
        annots.apply_loop_bounds(fa.cfg(), fa.forest(), &mut bounds, Some(mode));
        plans.push(ModePlan {
            mode: Some(mode.clone()),
            bounds,
            facts: annots.flow_facts(fa.cfg(), Some(mode)),
        });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    #[test]
    fn one_plan_per_mode_plus_global() {
        let src = "main: li r1, 8\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let header = image.symbol("loop").unwrap();
        let annots = AnnotationSet::parse(&format!(
            "mode ground, air;\nloop {header} bound 2 in mode ground;"
        ))
        .unwrap();
        let plans = plans_for(&fa, &annots);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].mode, None);
        // Global keeps the automatic bound (8)...
        assert_eq!(plans[0].bounds.results()[0].1.max_iterations(), Some(8));
        // ...ground mode tightens it to 2...
        let ground = plans
            .iter()
            .find(|p| p.mode.as_deref() == Some("ground"))
            .unwrap();
        assert_eq!(ground.bounds.results()[0].1.max_iterations(), Some(2));
        // ...air mode keeps the automatic bound.
        let air = plans
            .iter()
            .find(|p| p.mode.as_deref() == Some("air"))
            .unwrap();
        assert_eq!(air.bounds.results()[0].1.max_iterations(), Some(8));
    }
}
