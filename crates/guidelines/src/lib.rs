//! # wcet-guidelines — coding-guideline checking and design-level
//! annotations
//!
//! This crate is the paper's Section 4 made executable:
//!
//! * [`rules`] — a binary-level checker for the MISRA-C:2004 rules the
//!   paper analyzes (13.4, 13.6, 14.1, 14.4, 14.5, 16.1, 16.2, 20.4,
//!   20.7), each finding classified by its *actual* impact on static WCET
//!   analysis: tier-one (feasibility), tier-two (precision), or — the
//!   paper's verdict on rule 14.5 — style only,
//! * [`report`] — the predictability report aggregating findings per
//!   function and per rule,
//! * [`annot`] — the design-level annotation language of Section 4.3:
//!   loop bounds, operating modes, path exclusions, mutual exclusions,
//!   memory-access ranges, and indirect-target declarations, with a
//!   hand-written parser,
//! * [`modes`] — operating-mode bookkeeping: per-mode loop bounds and
//!   flow facts for mode-specific WCET analysis ("a static timing
//!   analyzer is able to produce much tighter worst-case execution time
//!   bounds for each mode of operation separately").
//!
//! # Example
//!
//! ```
//! use wcet_guidelines::annot::AnnotationSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let annots = AnnotationSet::parse(
//!     r#"
//!     mode ground, air;
//!     loop 0x1040 bound 16;
//!     loop 0x1040 bound 4 in mode ground;
//!     exclude 0x2000 in mode air;
//!     "#,
//! )?;
//! assert_eq!(annots.modes().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod annot;
pub mod modes;
pub mod report;
pub mod rules;

pub use annot::{AnnotError, AnnotationSet};
pub use report::PredictabilityReport;
pub use rules::{check_program, Finding, Impact, RuleId};
