//! The predictability report: aggregated rule findings.

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::{Finding, Impact, RuleId};

/// Aggregated result of checking a program against the guideline rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictabilityReport {
    findings: Vec<Finding>,
}

impl PredictabilityReport {
    /// Builds a report from raw findings.
    #[must_use]
    pub fn new(findings: Vec<Finding>) -> PredictabilityReport {
        PredictabilityReport { findings }
    }

    /// All findings.
    #[must_use]
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Findings of one impact class.
    #[must_use]
    pub fn by_impact(&self, impact: Impact) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.impact() == impact)
            .collect()
    }

    /// Finding count per rule.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<RuleId, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// True if no tier-one findings exist — i.e. a WCET bound is
    /// computable without manual annotations.
    #[must_use]
    pub fn tier1_clean(&self) -> bool {
        self.by_impact(Impact::Tier1).is_empty()
    }

    /// True if the program is completely clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for PredictabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predictability report: {} finding(s)",
            self.findings.len()
        )?;
        let counts = self.counts();
        for rule in RuleId::ALL {
            if let Some(&n) = counts.get(&rule) {
                writeln!(f, "  {rule}: {n} finding(s) [{}]", rule.impact())?;
            }
        }
        writeln!(
            f,
            "  tier-1 status: {}",
            if self.tier1_clean() {
                "clean — WCET computable without manual annotations"
            } else {
                "BLOCKED — tier-1 findings require design-level annotations"
            }
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_isa::Addr;

    fn finding(rule: RuleId) -> Finding {
        Finding {
            rule,
            addr: Addr(0x1000),
            function: None,
            message: "test".to_owned(),
        }
    }

    #[test]
    fn clean_report() {
        let r = PredictabilityReport::new(vec![]);
        assert!(r.is_clean());
        assert!(r.tier1_clean());
        assert!(r.counts().is_empty());
    }

    #[test]
    fn tier1_detection() {
        let r = PredictabilityReport::new(vec![finding(RuleId::Misra14_1)]);
        assert!(r.tier1_clean(), "14.1 is tier-2 only");
        let r = PredictabilityReport::new(vec![finding(RuleId::Misra16_2)]);
        assert!(!r.tier1_clean());
    }

    #[test]
    fn counts_and_display() {
        let r = PredictabilityReport::new(vec![
            finding(RuleId::Misra20_4),
            finding(RuleId::Misra20_4),
            finding(RuleId::Misra14_5),
        ]);
        assert_eq!(r.counts()[&RuleId::Misra20_4], 2);
        let text = r.to_string();
        assert!(text.contains("20.4"));
        assert!(text.contains("style only"));
    }
}
