//! The design-level annotation language (Section 4.3 made concrete).
//!
//! The paper's central recommendation is to "methodically document" design
//! knowledge — operating modes, loop bounds, memory-access ranges, error
//! scenarios — so the analyzer can consume it. This module defines a small
//! AIS-style text language and its hand-written parser:
//!
//! ```text
//! # comments run to end of line
//! mode ground, air;                     # declare operating modes
//! loop 0x1040 bound 16;                 # loop bound (all modes)
//! loop 0x1040 bound 4 in mode ground;   # mode-specific loop bound
//! exclude 0x2000;                       # block never executes
//! exclude 0x2010 in mode air;           # mode-specific exclusion
//! mutex 0x2000, 0x2040 capacity 1;      # mutual exclusion (read xor write)
//! maxcount 0x1500 8;                    # ≤ 8 executions per activation
//! call 0x1300 targets 0x2000, 0x2100;   # function-pointer targets
//! jump 0x1310 targets 0x2000;           # computed-jump targets
//! access 0x1200 range 0xf0000000..0xf0000100;  # memory-access range
//! ```
//!
//! Addresses refer to the *binary*: loop annotations name the loop header
//! address, `exclude`/`mutex`/`maxcount` name any instruction of the
//! affected basic block, `call`/`jump`/`access` name the instruction
//! itself.

use std::collections::BTreeMap;
use std::fmt;

use wcet_analysis::loopbound::LoopBounds;
use wcet_cfg::graph::Cfg;
use wcet_cfg::loops::LoopForest;
use wcet_cfg::TargetResolver;
use wcet_isa::Addr;
use wcet_micro::blocktime::AccessOverrides;
use wcet_path::flowfacts::FlowFact;

/// Parse error for annotation text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AnnotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "annotation error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for AnnotError {}

/// A loop-bound annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBoundAnn {
    /// Loop header address.
    pub header: Addr,
    /// Maximum header executions per loop entry.
    pub bound: u64,
    /// Restricting mode, if mode-specific.
    pub mode: Option<String>,
}

/// A block-exclusion annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcludeAnn {
    /// Address of any instruction in the excluded block.
    pub at: Addr,
    /// Restricting mode, if mode-specific.
    pub mode: Option<String>,
}

/// A mutual-exclusion annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutexAnn {
    /// First block (any instruction address within it).
    pub a: Addr,
    /// Second block.
    pub b: Addr,
    /// Combined execution capacity per activation.
    pub capacity: u64,
}

/// A maximum-execution-count annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxCountAnn {
    /// Address of any instruction in the bounded block.
    pub at: Addr,
    /// Maximum executions per activation.
    pub count: u64,
}

/// A shared execution budget over several blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumCountAnn {
    /// Addresses of instructions in the budgeted blocks.
    pub at: Vec<Addr>,
    /// Maximum combined executions per activation.
    pub count: u64,
}

/// A recursion-depth annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursionAnn {
    /// Entry address of the recursive function.
    pub function: Addr,
    /// Maximum activation depth per outermost call.
    pub depth: u64,
}

/// A memory-access-range annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessAnn {
    /// Address of the load/store instruction.
    pub at: Addr,
    /// Inclusive lower bound of the touched range.
    pub lo: u32,
    /// Inclusive upper bound of the touched range.
    pub hi: u32,
}

/// A parsed set of design-level annotations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationSet {
    modes: Vec<String>,
    loop_bounds: Vec<LoopBoundAnn>,
    excludes: Vec<ExcludeAnn>,
    mutexes: Vec<MutexAnn>,
    max_counts: Vec<MaxCountAnn>,
    sum_counts: Vec<SumCountAnn>,
    recursions: Vec<RecursionAnn>,
    accesses: Vec<AccessAnn>,
    call_targets: BTreeMap<Addr, Vec<Addr>>,
    jump_targets: BTreeMap<Addr, Vec<Addr>>,
}

impl AnnotationSet {
    /// An empty annotation set.
    #[must_use]
    pub fn new() -> AnnotationSet {
        AnnotationSet::default()
    }

    /// Parses annotation text.
    ///
    /// # Errors
    ///
    /// Returns [`AnnotError`] with the offending line on syntax errors or
    /// references to undeclared modes.
    pub fn parse(text: &str) -> Result<AnnotationSet, AnnotError> {
        let mut set = AnnotationSet::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let stmt = line.strip_suffix(';').unwrap_or(line).trim();
            set.parse_stmt(stmt, line_no)?;
        }
        Ok(set)
    }

    fn parse_stmt(&mut self, stmt: &str, line: usize) -> Result<(), AnnotError> {
        let err = |message: String| AnnotError { line, message };
        let mut words = stmt.split_whitespace();
        let keyword = words.next().unwrap_or("");
        let rest: Vec<&str> = words.collect();
        let rest_str = rest.join(" ");

        match keyword {
            "mode" => {
                for name in rest_str.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                        return Err(err(format!("invalid mode name `{name}`")));
                    }
                    if !self.modes.iter().any(|m| m == name) {
                        self.modes.push(name.to_owned());
                    }
                }
                Ok(())
            }
            "loop" => {
                // loop ADDR bound N [in mode M]
                let (body, mode) = split_mode(&rest_str);
                let parts: Vec<&str> = body.split_whitespace().collect();
                if parts.len() != 3 || parts[1] != "bound" {
                    return Err(err("expected `loop ADDR bound N [in mode M]`".into()));
                }
                let header = parse_addr(parts[0]).map_err(&err)?;
                let bound = parse_u64(parts[2]).map_err(&err)?;
                self.check_mode(&mode, line)?;
                self.loop_bounds.push(LoopBoundAnn {
                    header,
                    bound,
                    mode,
                });
                Ok(())
            }
            "exclude" => {
                let (body, mode) = split_mode(&rest_str);
                let at = parse_addr(body.trim()).map_err(&err)?;
                self.check_mode(&mode, line)?;
                self.excludes.push(ExcludeAnn { at, mode });
                Ok(())
            }
            "mutex" => {
                // mutex A, B capacity N
                let parts: Vec<&str> = rest_str.split("capacity").collect();
                if parts.len() != 2 {
                    return Err(err("expected `mutex A, B capacity N`".into()));
                }
                let addrs: Vec<&str> = parts[0].split(',').map(str::trim).collect();
                if addrs.len() != 2 {
                    return Err(err("mutex needs exactly two addresses".into()));
                }
                self.mutexes.push(MutexAnn {
                    a: parse_addr(addrs[0]).map_err(&err)?,
                    b: parse_addr(addrs[1]).map_err(&err)?,
                    capacity: parse_u64(parts[1].trim()).map_err(&err)?,
                });
                Ok(())
            }
            "maxcount" => {
                let parts: Vec<&str> = rest_str.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(err("expected `maxcount ADDR N`".into()));
                }
                self.max_counts.push(MaxCountAnn {
                    at: parse_addr(parts[0]).map_err(&err)?,
                    count: parse_u64(parts[1]).map_err(&err)?,
                });
                Ok(())
            }
            "sumcount" => {
                // sumcount A, B, ... max N — a shared execution budget
                // over several blocks ("at most N errors per activation").
                let parts: Vec<&str> = rest_str.splitn(2, "max").collect();
                if parts.len() != 2 {
                    return Err(err("expected `sumcount A, B, ... max N`".into()));
                }
                let addrs: Result<Vec<Addr>, String> = parts[0]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(parse_addr)
                    .collect();
                let addrs = addrs.map_err(&err)?;
                if addrs.is_empty() {
                    return Err(err("sumcount needs at least one address".into()));
                }
                self.sum_counts.push(SumCountAnn {
                    at: addrs,
                    count: parse_u64(parts[1].trim()).map_err(&err)?,
                });
                Ok(())
            }
            "call" | "jump" => {
                // call ADDR targets A, B, ...
                let parts: Vec<&str> = rest_str.splitn(2, "targets").collect();
                if parts.len() != 2 {
                    return Err(err(format!("expected `{keyword} ADDR targets A, ...`")));
                }
                let at = parse_addr(parts[0].trim()).map_err(&err)?;
                let targets: Result<Vec<Addr>, String> = parts[1]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(parse_addr)
                    .collect();
                let targets = targets.map_err(&err)?;
                if targets.is_empty() {
                    return Err(err("target list must not be empty".into()));
                }
                if keyword == "call" {
                    self.call_targets.entry(at).or_default().extend(targets);
                } else {
                    self.jump_targets.entry(at).or_default().extend(targets);
                }
                Ok(())
            }
            "recursion" => {
                // recursion ADDR depth N — the design-level knowledge the
                // paper says recursion requires (Section 3.2).
                let parts: Vec<&str> = rest_str.split_whitespace().collect();
                if parts.len() != 3 || parts[1] != "depth" {
                    return Err(err("expected `recursion ADDR depth N`".into()));
                }
                let depth = parse_u64(parts[2]).map_err(&err)?;
                if depth == 0 {
                    return Err(err("recursion depth must be at least 1".into()));
                }
                self.recursions.push(RecursionAnn {
                    function: parse_addr(parts[0]).map_err(&err)?,
                    depth,
                });
                Ok(())
            }
            "access" => {
                // access ADDR range LO..HI
                let parts: Vec<&str> = rest_str.splitn(2, "range").collect();
                if parts.len() != 2 {
                    return Err(err("expected `access ADDR range LO..HI`".into()));
                }
                let at = parse_addr(parts[0].trim()).map_err(&err)?;
                let range: Vec<&str> = parts[1].trim().split("..").collect();
                if range.len() != 2 {
                    return Err(err("expected a `LO..HI` range".into()));
                }
                let lo = parse_addr(range[0]).map_err(&err)?.0;
                let hi = parse_addr(range[1]).map_err(&err)?.0;
                if lo > hi {
                    return Err(err("range bounds inverted".into()));
                }
                self.accesses.push(AccessAnn { at, lo, hi });
                Ok(())
            }
            other => Err(err(format!("unknown annotation keyword `{other}`"))),
        }
    }

    fn check_mode(&self, mode: &Option<String>, line: usize) -> Result<(), AnnotError> {
        if let Some(m) = mode {
            if !self.modes.iter().any(|x| x == m) {
                return Err(AnnotError {
                    line,
                    message: format!("mode `{m}` not declared (use `mode {m};` first)"),
                });
            }
        }
        Ok(())
    }

    /// Declared operating modes.
    #[must_use]
    pub fn modes(&self) -> &[String] {
        &self.modes
    }

    /// All loop-bound annotations.
    #[must_use]
    pub fn loop_bound_annotations(&self) -> &[LoopBoundAnn] {
        &self.loop_bounds
    }

    /// All access-range annotations.
    #[must_use]
    pub fn access_annotations(&self) -> &[AccessAnn] {
        &self.accesses
    }

    /// The annotated recursion depth for `function`, if any.
    #[must_use]
    pub fn recursion_depth(&self, function: Addr) -> Option<u64> {
        self.recursions
            .iter()
            .find(|r| r.function == function)
            .map(|r| r.depth)
    }

    /// Builds a control-flow target resolver from the `call`/`jump`
    /// annotations.
    #[must_use]
    pub fn to_resolver(&self) -> TargetResolver {
        let mut r = TargetResolver::empty();
        for (&at, targets) in &self.call_targets {
            r.add_call_targets(at, targets.iter().copied());
        }
        for (&at, targets) in &self.jump_targets {
            r.add_jump_targets(at, targets.iter().copied());
        }
        r
    }

    /// Applies loop-bound annotations valid in `mode` (mode-specific
    /// bounds override global ones) to a function's computed bounds.
    /// Takes the CFG/forest pair the bounds were computed over (the
    /// peeled pair under virtual unrolling) — annotations name header
    /// *addresses*, which survive peeling.
    pub fn apply_loop_bounds(
        &self,
        cfg: &Cfg,
        forest: &LoopForest,
        bounds: &mut LoopBounds,
        mode: Option<&str>,
    ) {
        // Global first, then mode-specific (so the latter win).
        for pass_mode_specific in [false, true] {
            for ann in &self.loop_bounds {
                let applies = match (&ann.mode, mode) {
                    (None, _) => !pass_mode_specific,
                    (Some(m), Some(active)) => pass_mode_specific && m == active,
                    (Some(_), None) => false,
                };
                if !applies {
                    continue;
                }
                for info in forest.loops() {
                    if cfg.block(info.header).start == ann.header {
                        bounds.apply_annotation(info.id, ann.bound);
                    }
                }
            }
        }
    }

    /// Translates exclusions, mutexes, and max-counts valid in `mode`
    /// into IPET flow facts against `cfg`. Annotations naming addresses
    /// outside the function are skipped (they belong to other functions).
    #[must_use]
    pub fn flow_facts(&self, cfg: &Cfg, mode: Option<&str>) -> Vec<FlowFact> {
        let mut facts = Vec::new();
        for ex in &self.excludes {
            let applies = match (&ex.mode, mode) {
                (None, _) => true,
                (Some(m), Some(active)) => m == active,
                (Some(_), None) => false,
            };
            if !applies {
                continue;
            }
            if let Some(block) = cfg.block_containing(ex.at) {
                let why = match &ex.mode {
                    Some(m) => format!("excluded in mode {m}"),
                    None => "excluded by annotation".to_owned(),
                };
                facts.push(FlowFact::exclude(block, &why));
            }
        }
        for mx in &self.mutexes {
            if let (Some(a), Some(b)) = (cfg.block_containing(mx.a), cfg.block_containing(mx.b)) {
                facts.push(FlowFact::mutually_exclusive(
                    a,
                    b,
                    mx.capacity,
                    "mutual exclusion annotation",
                ));
            }
        }
        for mc in &self.max_counts {
            if let Some(block) = cfg.block_containing(mc.at) {
                facts.push(FlowFact::max_count(block, mc.count, "max-count annotation"));
            }
        }
        for sc in &self.sum_counts {
            let blocks: Vec<_> = sc
                .at
                .iter()
                .filter_map(|&a| cfg.block_containing(a))
                .map(|b| (b, 1.0))
                .collect();
            // Only emit when every named block belongs to this function:
            // a partial budget would be unsound.
            if blocks.len() == sc.at.len() {
                facts.push(FlowFact::linear(
                    blocks,
                    wcet_path::flowfacts::FactOp::Le,
                    sc.count as f64,
                    "sum-count annotation (shared error budget)",
                ));
            }
        }
        facts
    }

    /// Translates `access` annotations into per-access memory-range
    /// overrides for the block-time analysis.
    #[must_use]
    pub fn access_overrides(&self) -> AccessOverrides {
        let mut o = AccessOverrides::none();
        for a in &self.accesses {
            // The parser rejects inverted `LO..HI` ranges, so every stored
            // annotation satisfies the restriction's precondition.
            o.restrict(a.at, a.lo, a.hi)
                .expect("parse guarantees lo <= hi");
        }
        o
    }
}

fn split_mode(s: &str) -> (String, Option<String>) {
    match s.find(" in mode ") {
        Some(pos) => {
            let mode = s[pos + " in mode ".len()..].trim().to_owned();
            (s[..pos].trim().to_owned(), Some(mode))
        }
        None => (s.trim().to_owned(), None),
    }
}

fn parse_addr(s: &str) -> Result<Addr, String> {
    let s = s.trim();
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        s.parse::<u32>()
    };
    v.map(Addr).map_err(|_| format!("invalid address `{s}`"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim()
        .replace('_', "")
        .parse::<u64>()
        .map_err(|_| format!("invalid number `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::reconstruct;
    use wcet_isa::asm::assemble;

    #[test]
    fn parse_full_language() {
        let set = AnnotationSet::parse(
            r#"
            # flight control annotations
            mode ground, air;
            loop 0x1040 bound 16;
            loop 0x1040 bound 4 in mode ground;
            exclude 0x2000;
            exclude 0x2010 in mode air;
            mutex 0x2000, 0x2040 capacity 1;
            maxcount 0x1500 8;
            call 0x1300 targets 0x2000, 0x2100;
            jump 0x1310 targets 0x2000;
            access 0x1200 range 0xf0000000..0xf0000100;
            "#,
        )
        .unwrap();
        assert_eq!(set.modes(), &["ground", "air"]);
        assert_eq!(set.loop_bound_annotations().len(), 2);
        assert_eq!(set.access_annotations().len(), 1);
        let r = set.to_resolver();
        assert_eq!(r.call_targets.len(), 1);
        assert_eq!(r.jump_targets.len(), 1);
    }

    #[test]
    fn undeclared_mode_rejected() {
        let err = AnnotationSet::parse("loop 0x1000 bound 4 in mode nosuch;").unwrap_err();
        assert!(err.message.contains("not declared"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn syntax_errors_report_line() {
        let err = AnnotationSet::parse("mode a;\nfrobnicate 0x10;").unwrap_err();
        assert_eq!(err.line, 2);
        let err = AnnotationSet::parse("loop 0x10 bound;").unwrap_err();
        assert_eq!(err.line, 1);
        let err = AnnotationSet::parse("access 0x10 range 0x20..0x10;").unwrap_err();
        assert!(err.message.contains("inverted"));
    }

    #[test]
    fn loop_bound_application_with_modes() {
        let src = "main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let fa = analyze_function(&p, p.entry, &image);
        let header = image.symbol("loop").unwrap();
        let set = AnnotationSet::parse(&format!(
            "mode ground, air;\nloop {header} bound 100;\nloop {header} bound 10 in mode ground;"
        ))
        .unwrap();

        // Global bound.
        let mut bounds = fa.loop_bounds();
        set.apply_loop_bounds(fa.cfg(), fa.forest(), &mut bounds, None);
        assert_eq!(bounds.results()[0].1.max_iterations(), Some(100));

        // Mode-specific bound wins in its mode.
        let mut bounds = fa.loop_bounds();
        set.apply_loop_bounds(fa.cfg(), fa.forest(), &mut bounds, Some("ground"));
        assert_eq!(bounds.results()[0].1.max_iterations(), Some(10));

        // Other mode falls back to the global bound.
        let mut bounds = fa.loop_bounds();
        set.apply_loop_bounds(fa.cfg(), fa.forest(), &mut bounds, Some("air"));
        assert_eq!(bounds.results()[0].1.max_iterations(), Some(100));
    }

    #[test]
    fn flow_fact_translation() {
        let src = "main: beq r4, r0, a\n mul r1, r2, r3\n j done\na: nop\ndone: halt";
        let image = assemble(src).unwrap();
        let p = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let cfg = p.entry_cfg();
        let mul_addr = p.entry.offset(4);
        let set = AnnotationSet::parse(&format!(
            "mode m;\nexclude {mul_addr};\nmaxcount {mul_addr} 3;"
        ))
        .unwrap();
        let facts = set.flow_facts(cfg, None);
        assert_eq!(facts.len(), 2);
        // Addresses outside the function are skipped silently.
        let set2 = AnnotationSet::parse("exclude 0x99990000;").unwrap();
        assert!(set2.flow_facts(cfg, None).is_empty());
    }

    #[test]
    fn access_override_translation() {
        let set = AnnotationSet::parse("access 0x1200 range 0x100..0x200;").unwrap();
        let o = set.access_overrides();
        assert_eq!(o.len(), 1);
        let range = o.range_of(Addr(0x1200)).unwrap();
        assert_eq!(range.lo(), Some(0x100));
        assert_eq!(range.hi(), Some(0x200));
    }

    #[test]
    fn recursion_and_sumcount_parse() {
        let set =
            AnnotationSet::parse("recursion 0x2000 depth 4;\nsumcount 0x10, 0x20, 0x30 max 2;")
                .unwrap();
        assert_eq!(set.recursion_depth(Addr(0x2000)), Some(4));
        assert_eq!(set.recursion_depth(Addr(0x9999)), None);

        // Depth zero is rejected (a recursive function runs at least once).
        let err = AnnotationSet::parse("recursion 0x2000 depth 0;").unwrap_err();
        assert!(err.message.contains("at least 1"));
        // Malformed sumcount.
        assert!(AnnotationSet::parse("sumcount max 2;").is_err());
    }

    #[test]
    fn empty_and_comment_only_input() {
        let set = AnnotationSet::parse("\n  # nothing here\n\n").unwrap();
        assert_eq!(set, AnnotationSet::new());
    }
}
