//! Binary-level checks for the MISRA-C:2004 rules of the paper's
//! Section 4.2.
//!
//! Each check mirrors the paper's *analysis* of the rule, not just its
//! letter: rule 14.5 (`continue`) is reported as style-only because extra
//! back edges cannot make a loop irreducible, while rule 14.4 (`goto`)
//! findings fire only on actually-irreducible flow. Unresolved function
//! pointers — a challenge, not a MISRA rule — are reported under
//! [`RuleId::FunctionPointer`].

use std::fmt;

use wcet_analysis::loopbound::{BoundResult, UnboundedReason};
use wcet_analysis::FunctionAnalysis;
use wcet_cfg::callgraph::CallGraph;
use wcet_cfg::graph::Program;
use wcet_cfg::reach::coverage;
use wcet_isa::{Addr, Image, Inst};

/// The rules (and tier-one challenges) the checker knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// 13.4: no floating-point loop control.
    Misra13_4,
    /// 13.6: loop counters not modified in the body.
    Misra13_6,
    /// 14.1: no unreachable code.
    Misra14_1,
    /// 14.4: no `goto` (binary-level: no irreducible loops).
    Misra14_4,
    /// 14.5: no `continue` — style only, per the paper.
    Misra14_5,
    /// 16.1: no variable-argument functions (binary-level: input-data
    /// dependent loops over argument lists).
    Misra16_1,
    /// 16.2: no recursion.
    Misra16_2,
    /// 20.4: no dynamic heap allocation.
    Misra20_4,
    /// 20.7: no `setjmp`/`longjmp` (binary-level: unresolved non-local
    /// indirect jumps).
    Misra20_7,
    /// Section 3.2 challenge: unresolved function pointers.
    FunctionPointer,
}

impl RuleId {
    /// Every rule, for iteration in reports.
    pub const ALL: [RuleId; 10] = [
        RuleId::Misra13_4,
        RuleId::Misra13_6,
        RuleId::Misra14_1,
        RuleId::Misra14_4,
        RuleId::Misra14_5,
        RuleId::Misra16_1,
        RuleId::Misra16_2,
        RuleId::Misra20_4,
        RuleId::Misra20_7,
        RuleId::FunctionPointer,
    ];

    /// Short identifier (`"13.4"` etc.).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::Misra13_4 => "13.4",
            RuleId::Misra13_6 => "13.6",
            RuleId::Misra14_1 => "14.1",
            RuleId::Misra14_4 => "14.4",
            RuleId::Misra14_5 => "14.5",
            RuleId::Misra16_1 => "16.1",
            RuleId::Misra16_2 => "16.2",
            RuleId::Misra20_4 => "20.4",
            RuleId::Misra20_7 => "20.7",
            RuleId::FunctionPointer => "FP",
        }
    }

    /// The impact class the paper assigns to violations of this rule.
    #[must_use]
    pub fn impact(&self) -> Impact {
        match self {
            // These make WCET computation infeasible without annotations.
            RuleId::Misra13_4
            | RuleId::Misra13_6
            | RuleId::Misra14_4
            | RuleId::Misra16_1
            | RuleId::Misra16_2
            | RuleId::Misra20_7
            | RuleId::FunctionPointer => Impact::Tier1,
            // These only cost precision.
            RuleId::Misra14_1 | RuleId::Misra20_4 => Impact::Tier2,
            // The paper: "the only purpose of this rule is to enforce a
            // certain coding style."
            RuleId::Misra14_5 => Impact::StyleOnly,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == RuleId::FunctionPointer {
            f.write_str("function-pointer challenge")
        } else {
            write!(f, "MISRA-C:2004 rule {}", self.code())
        }
    }
}

/// How a finding affects static WCET analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Impact {
    /// Blocks WCET computation entirely (needs manual annotations).
    Tier1,
    /// Costs bound precision.
    Tier2,
    /// No analytical impact (coding style).
    StyleOnly,
}

impl fmt::Display for Impact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Impact::Tier1 => "tier-1 (feasibility)",
            Impact::Tier2 => "tier-2 (precision)",
            Impact::StyleOnly => "style only",
        };
        f.write_str(s)
    }
}

/// One rule violation (or challenge occurrence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Code address of the evidence.
    pub addr: Addr,
    /// Function the evidence belongs to (entry address), if attributable.
    pub function: Option<Addr>,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Impact class of this finding (delegates to the rule).
    #[must_use]
    pub fn impact(&self) -> Impact {
        self.rule.impact()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} | {}] {}: {}",
            self.rule.code(),
            self.impact(),
            self.addr,
            self.message
        )
    }
}

/// Runs every check over a reconstructed program.
///
/// `analyses` must contain one [`FunctionAnalysis`] per function of
/// `program` (as produced by `wcet_analysis::analyze_function`).
///
/// Composed from [`check_function`] (per-function rules — cacheable by
/// function content) and [`check_image_level`] (whole-image rules), then
/// sorted into the canonical `(address, rule)` order. The incremental
/// analyzer reproduces exactly this composition from cached per-function
/// findings, which is what keeps warm and cold reports byte-identical.
#[must_use]
pub fn check_program(
    image: &Image,
    program: &Program,
    analyses: &[FunctionAnalysis],
) -> Vec<Finding> {
    let callgraph = CallGraph::build(program);
    let mut findings = Vec::new();
    for fa in analyses {
        findings.extend(check_function(fa));
    }
    findings.extend(check_image_level(image, program, &callgraph));
    sort_findings(&mut findings);
    findings
}

/// Sorts findings into the canonical report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by_key(|f| (f.addr, f.rule));
}

/// The per-function rules (13.4/13.6/14.4/16.1 via loop-bound failures,
/// 14.5, 20.4, 20.7, and the function-pointer challenge). These depend
/// only on the function's own analysis, which makes their findings
/// content-addressable: same function bytes, data, and configuration →
/// same findings.
#[must_use]
pub fn check_function(fa: &FunctionAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();
    {
        let bounds = fa.loop_bounds();
        for (id, result) in bounds.results() {
            let info = fa.forest().info(*id);
            let header_addr = fa.cfg().block(info.header).start;
            if let BoundResult::Unbounded { reason } = result {
                let (rule, message) = match reason {
                    UnboundedReason::FloatControlled => (
                        RuleId::Misra13_4,
                        "loop exit condition uses floating-point operands; the \
                         integer value analysis cannot bound it"
                            .to_owned(),
                    ),
                    UnboundedReason::ComplexCounterUpdate => (
                        RuleId::Misra13_6,
                        "loop counter is modified more than once per iteration (or \
                         by a non-constant step); no bound derivable"
                            .to_owned(),
                    ),
                    UnboundedReason::Irreducible => (
                        RuleId::Misra14_4,
                        format!(
                            "irreducible loop with {} entries: goto-style flow; no \
                             automatic bounding technique exists and virtual \
                             unrolling is inapplicable",
                            info.entries.len()
                        ),
                    ),
                    UnboundedReason::DataDependent => (
                        RuleId::Misra16_1,
                        "loop iteration count depends on input data (argument-list \
                         style); requires a design-level bound annotation"
                            .to_owned(),
                    ),
                    UnboundedReason::NoExit | UnboundedReason::NoPattern => continue,
                };
                findings.push(Finding {
                    rule,
                    addr: header_addr,
                    function: Some(fa.entry),
                    message,
                });
            }
        }

        // 14.5: continue-style extra back edges (style only).
        for info in fa.forest().loops() {
            if !info.irreducible && info.back_edges.len() > 1 {
                findings.push(Finding {
                    rule: RuleId::Misra14_5,
                    addr: fa.cfg().block(info.header).start,
                    function: Some(fa.entry),
                    message: format!(
                        "loop has {} back edges (continue-style); harmless for \
                         analysis — back edges to the header cannot create \
                         irreducibility",
                        info.back_edges.len()
                    ),
                });
            }
        }

        // 20.4: dynamic allocation; 20.7/FP: unresolved indirections.
        for (_, block) in fa.cfg().iter() {
            for (ia, inst) in &block.insts {
                match inst {
                    Inst::Alloc { .. } => findings.push(Finding {
                        rule: RuleId::Misra20_4,
                        addr: *ia,
                        function: Some(fa.entry),
                        message: "dynamic heap allocation: returned address is \
                                  statically unknown, causing cache and memory-latency \
                                  over-estimation"
                            .to_owned(),
                    }),
                    Inst::JumpInd { .. } if fa.cfg().unresolved.contains(ia) => {
                        findings.push(Finding {
                            rule: RuleId::Misra20_7,
                            addr: *ia,
                            function: Some(fa.entry),
                            message: "unresolved indirect jump (setjmp/longjmp-like \
                                      non-local transfer): control flow cannot be \
                                      reconstructed"
                                .to_owned(),
                        });
                    }
                    Inst::CallInd { .. } if fa.cfg().unresolved.contains(ia) => {
                        findings.push(Finding {
                            rule: RuleId::FunctionPointer,
                            addr: *ia,
                            function: Some(fa.entry),
                            message: "unresolved function-pointer call: callee set \
                                      unknown, call graph incomplete"
                                .to_owned(),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    findings
}

/// The whole-image rules: 14.1 (unreachable code, needs image coverage)
/// and 16.2 (recursion, needs the call graph). Cheap enough to recompute
/// on every run — cached per-function findings merge with a fresh pass of
/// these.
#[must_use]
pub fn check_image_level(image: &Image, program: &Program, callgraph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();

    // --- 14.1: unreachable code (image level) ---------------------------
    let cov = coverage(image, program);
    for range in &cov.dead_ranges {
        findings.push(Finding {
            rule: RuleId::Misra14_1,
            addr: range.start,
            function: None,
            message: format!(
                "{} unreachable instruction(s): dead code enlarges the analyzed \
                 state space and can surface on spurious worst-case paths",
                range.inst_count()
            ),
        });
    }

    // --- 16.2: recursion (call-graph level) -----------------------------
    for fun in callgraph.recursive_functions() {
        findings.push(Finding {
            rule: RuleId::Misra16_2,
            addr: fun,
            function: Some(fun),
            message: "function participates in a call-graph cycle (direct or \
                      indirect recursion); like irreducible loops, recursion depth \
                      cannot be bounded automatically"
                .to_owned(),
        });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_analysis::analyze_function;
    use wcet_cfg::graph::{reconstruct, TargetResolver};
    use wcet_isa::asm::assemble;

    fn check(src: &str) -> Vec<Finding> {
        let image = assemble(src).unwrap();
        let program = reconstruct(&image, &TargetResolver::empty()).unwrap();
        let analyses: Vec<FunctionAnalysis> = program
            .functions
            .keys()
            .map(|&f| analyze_function(&program, f, &image))
            .collect();
        check_program(&image, &program, &analyses)
    }

    fn rules_found(findings: &[Finding]) -> Vec<RuleId> {
        let mut rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn clean_program_has_no_findings() {
        let findings = check("main: li r1, 4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn rule_13_4_float_loop() {
        let findings = check(
            "main: fmov f0, r0\n li r1, 0x41200000\n fmov f2, r1\nloop: fadd f0, f0, f2\n fblt f0, f2, loop\n halt",
        );
        assert!(rules_found(&findings).contains(&RuleId::Misra13_4));
        assert_eq!(findings[0].impact(), Impact::Tier1);
    }

    #[test]
    fn rule_13_6_double_update() {
        let findings = check(
            "main: li r1, 8\nloop: subi r1, r1, 1\n subi r1, r1, 1\n bne r1, r0, loop\n halt",
        );
        assert!(rules_found(&findings).contains(&RuleId::Misra13_6));
    }

    #[test]
    fn rule_14_1_dead_code() {
        let findings = check("main: halt\n nop\n nop");
        assert!(rules_found(&findings).contains(&RuleId::Misra14_1));
        assert_eq!(findings[0].impact(), Impact::Tier2);
    }

    #[test]
    fn rule_14_4_irreducible() {
        let findings = check(
            "main: beq r1, r0, b\na: subi r2, r2, 1\n j b\nb: addi r2, r2, 1\n bne r2, r0, a\n halt",
        );
        assert!(rules_found(&findings).contains(&RuleId::Misra14_4));
    }

    #[test]
    fn rule_14_5_continue_is_style_only() {
        let findings = check(
            r#"
            main: li r1, 10
            head: beq r1, r0, done
                  subi r1, r1, 1
                  beq r2, r0, head
                  subi r2, r2, 1
                  j head
            done: halt
            "#,
        );
        let continue_findings: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == RuleId::Misra14_5)
            .collect();
        assert_eq!(continue_findings.len(), 1);
        assert_eq!(continue_findings[0].impact(), Impact::StyleOnly);
    }

    #[test]
    fn rule_16_1_data_dependent_loop() {
        let findings = check("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt");
        assert!(rules_found(&findings).contains(&RuleId::Misra16_1));
    }

    #[test]
    fn rule_16_2_recursion() {
        let findings = check("main: call f\n halt\nf: beq r1, r0, out\n call f\nout: ret");
        assert!(rules_found(&findings).contains(&RuleId::Misra16_2));
    }

    #[test]
    fn rule_20_4_alloc() {
        let findings = check("main: li r1, 32\n alloc r2, r1\n halt");
        assert!(rules_found(&findings).contains(&RuleId::Misra20_4));
    }

    #[test]
    fn rule_20_7_and_fp_unresolved_indirections() {
        let findings = check("main: jr r4");
        assert!(rules_found(&findings).contains(&RuleId::Misra20_7));
        let findings = check("main: callr r4\n halt");
        assert!(rules_found(&findings).contains(&RuleId::FunctionPointer));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let findings = check(
            r#"
            main: li r1, 32
                  alloc r2, r1
                  call f
                  halt
                  nop
            f:    call f
                  ret
            "#,
        );
        let rules = rules_found(&findings);
        assert!(rules.contains(&RuleId::Misra20_4));
        assert!(rules.contains(&RuleId::Misra16_2));
        assert!(rules.contains(&RuleId::Misra14_1));
    }
}
