//! Incremental re-analysis: a persistent, content-addressed artifact
//! cache.
//!
//! A production analysis service sees mostly *deltas*: a rebuilt image in
//! which one or two functions changed. Re-running value analysis, block
//! timing, and IPET over every unchanged function is the dominant waste.
//! This module caches, per function, everything the pipeline derives from
//! the function's content:
//!
//! * **Function artifacts** (`fn/<key>.art`) — resolver hints, guideline
//!   findings, loop statistics, automatic loop bounds, per-block WCET/BCET
//!   times, and the cache-classification summary. Keyed by
//!   [`function_key`]: a stable hash of the function's reconstructed CFG
//!   (raw instruction words *and* resolved terminators), the image's
//!   initialized data, the callees' may-write-memory summaries, and the
//!   [`config_fingerprint`]. Everything the value/timing phases read is in
//!   the key, so a hit replays the exact artifact a fresh run would
//!   compute.
//! * **IPET solutions** (`ipet/<structkey>.sol`) — the WCET and BCET
//!   [`WcetResult`] of one `(function, mode)` pair. The file is addressed
//!   by the *structure* key (function key + mode); inside, the full key
//!   additionally covers the callee cost vector. A callee whose bound
//!   changed therefore misses on the full key and re-solves — dirtiness
//!   propagates caller-ward through content addressing, mirroring the
//!   explicit [`wcet_cfg::callgraph::CallGraph::transitive_callers`] pass
//!   the analyzer runs for its statistics.
//!
//! Soundness stance: a cache hit must be byte-identical to a fresh run.
//! That holds because every input of the cached computation is hashed
//! into the key and the pipeline itself is deterministic (fixed worklist
//! orders, Bland's rule in the simplex, address-ordered merges). Entries
//! that fail structural validation (wrong block/loop counts, truncated
//! bytes, version mismatch) are treated as misses. Recursive SCCs are
//! never cached — their costs are computed jointly per run.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use wcet_analysis::loopbound::{BoundResult, BoundSource, UnboundedReason};
use wcet_analysis::valueanalysis::FunctionSummary;
use wcet_cfg::block::BlockId;
use wcet_cfg::graph::Cfg;
use wcet_guidelines::rules::{Finding, RuleId};
use wcet_isa::hash::StableHasher;
use wcet_isa::{Addr, Image};
use wcet_path::ipet::{LpStats, WcetResult};

use crate::analyzer::AnalyzerConfig;

/// Bumped whenever the artifact layout or any hashed semantic changes;
/// part of every key, so stale caches read as cold, never as wrong.
/// Version 2: cache analysis clobbers the ACS at call sites (soundness
/// fix), and the context-sensitive pipeline keys IPET solutions on
/// per-context entry-state digests.
/// Version 3: per-context persistence analysis — footprint artifacts
/// (`fp/`), the persistence flag in the config fingerprint, per-set may
/// poisoning and the persistence instance in the entry-ACS digests.
/// Version 4: multi-ISA — the config fingerprint carries the ISA tag, so
/// the whole key space forks per backend and an artifact produced under
/// one encoding can never satisfy a lookup under another.
/// Version 6: IPET entries carry the LP solver statistics (pivots,
/// refactorizations, presolve eliminations) so a warm replay restores the
/// exact trace counters the fresh solve produced.
/// Version 7: the abstract pipeline — the pipeline flag joins the config
/// fingerprint and function artifacts record the pipeline-state entry
/// digest their block times were derived against.
pub(crate) const CACHE_VERSION: u32 = 7;

/// Magic prefix of every artifact file.
const MAGIC: &[u8; 4] = b"WCAC";

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// Fingerprint of everything in the [`AnalyzerConfig`] that can influence
/// per-function results: the machine model, the annotation set, and the
/// pipeline switches. `parallelism` is deliberately excluded — the report
/// is identical at any worker count, so one cache serves every `--threads`
/// setting (and the tests hold it to that).
#[must_use]
pub fn config_fingerprint(config: &AnalyzerConfig) -> u64 {
    let mut h = StableHasher::new();
    h.write_u32(CACHE_VERSION);
    // `Debug` renderings are stable for a given build of this crate, and
    // the cache version gates across builds; this avoids hand-maintaining
    // a field-by-field serialization that silently rots when a config
    // field is added.
    h.write_str(&format!("{:?}", config.machine));
    h.write_str(&format!("{:?}", config.annotations));
    h.write_u64(config.max_resolve_rounds as u64);
    h.write_u64(u64::from(config.check_guidelines));
    h.write_u64(u64::from(config.unrolling));
    h.write_u64(config.context_depth as u64);
    // The persistence fingerprint: first-miss classification changes
    // block times and IPET systems, so cached solutions must not cross
    // the flag. Function keys embed this fingerprint, and every IPET key
    // embeds a function key — the whole cache space forks on the flag.
    h.write_u64(u64::from(config.persistence));
    // The pipeline fingerprint: the abstract-pipe timing model changes
    // every block time and IPET objective, so cached solutions must not
    // cross the flag either.
    h.write_u64(u64::from(config.pipeline));
    // The ISA tag: instruction words mean different things per backend
    // (and `function_key` falls back to `Debug` for shapes the house
    // encoder rejects), so the key space must fork on the ISA outright.
    h.write_str(config.isa.name());
    h.finish()
}

/// Content key of one function: CFG structure (instruction words, block
/// boundaries, resolved terminators, unresolved sites), the image's data
/// hash, the callee write summaries, and the configuration fingerprint.
#[must_use]
pub fn function_key(
    cfg: &Cfg,
    data_hash: u64,
    config_fp: u64,
    summaries: &HashMap<Addr, FunctionSummary>,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u32(CACHE_VERSION);
    h.write_u64(config_fp);
    h.write_u64(data_hash);
    h.write_usize(cfg.block_count());
    for (_, block) in cfg.iter() {
        h.write_u32(block.start.0);
        h.write_usize(block.insts.len());
        for (addr, inst) in &block.insts {
            h.write_u32(addr.0);
            // The raw word where the instruction round-trips (the normal
            // case), the debug rendering otherwise — both stable.
            match wcet_isa::encode::encode(inst, *addr) {
                Ok(word) => h.write_u32(word),
                Err(_) => h.write_str(&format!("{inst:?}")),
            }
        }
        // The terminator carries the *resolved* control flow, which can
        // differ between resolution rounds over identical bytes. Hashed
        // structurally (discriminant + every embedded address/condition)
        // rather than through `Debug` — this runs once per block per
        // round, so no allocation.
        hash_terminator(&mut h, &block.term);
    }
    h.write_usize(cfg.unresolved.len());
    for site in &cfg.unresolved {
        h.write_u32(site.0);
    }
    // The value analysis consults callees only through their
    // may-write-memory summaries; hash exactly that.
    for (site, callees) in cfg.call_sites() {
        h.write_u32(site.0);
        for callee in callees {
            h.write_u32(callee.0);
            let writes = summaries.get(&callee).is_none_or(|s| s.writes_mem);
            h.write_u64(u64::from(writes));
        }
    }
    h.finish()
}

/// Absorbs a terminator's full resolved structure into the hasher.
fn hash_terminator(h: &mut StableHasher, term: &wcet_cfg::block::Terminator) {
    use wcet_cfg::block::Terminator;
    match term {
        Terminator::CondBranch {
            cond,
            taken,
            fallthrough,
            float,
        } => {
            h.write_u32(0);
            h.write_u32(match cond {
                None => 0,
                Some(wcet_isa::Cond::Eq) => 1,
                Some(wcet_isa::Cond::Ne) => 2,
                Some(wcet_isa::Cond::Lt) => 3,
                Some(wcet_isa::Cond::Ge) => 4,
                Some(wcet_isa::Cond::Ltu) => 5,
                Some(wcet_isa::Cond::Geu) => 6,
            });
            h.write_u32(taken.0);
            h.write_u32(fallthrough.0);
            h.write_u64(u64::from(*float));
        }
        Terminator::Jump { target } => {
            h.write_u32(1);
            h.write_u32(target.0);
        }
        Terminator::Call { callee, ret_to } => {
            h.write_u32(2);
            h.write_u32(callee.0);
            h.write_u32(ret_to.0);
        }
        Terminator::CallInd { callees, ret_to } => {
            h.write_u32(3);
            h.write_usize(callees.len());
            for c in callees {
                h.write_u32(c.0);
            }
            h.write_u32(ret_to.0);
        }
        Terminator::JumpInd { targets } => {
            h.write_u32(4);
            h.write_usize(targets.len());
            for t in targets {
                h.write_u32(t.0);
            }
        }
        Terminator::Ret => h.write_u32(5),
        Terminator::Halt => h.write_u32(6),
        Terminator::Fallthrough { next } => {
            h.write_u32(7);
            h.write_u32(next.0);
        }
    }
}

/// Structure key of one `(function, mode)` IPET system.
#[must_use]
pub fn ipet_struct_key(fn_key: u64, mode: Option<&str>) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(fn_key);
    match mode {
        Some(m) => h.write_str(m),
        None => h.write_str("\u{0}global"),
    }
    h.finish()
}

/// Full key of one IPET solve: the structure key plus the callee cost
/// vector it was priced with.
#[must_use]
pub fn ipet_full_key(struct_key: u64, costs: &[(Addr, u64, u64)]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(struct_key);
    h.write_usize(costs.len());
    for &(callee, wcet, bcet) in costs {
        h.write_u32(callee.0);
        h.write_u64(wcet);
        h.write_u64(bcet);
    }
    h.finish()
}

/// Structure key of one *(function, context, mode)* IPET system in the
/// context-sensitive pipeline: the function's content key plus the
/// digest of the context's entry state (register/memory intervals and,
/// when caches are configured, the entry ACS pair). Two contexts with
/// identical entry digests legitimately share a solution — the pipeline
/// is a pure function of the entry state.
#[must_use]
pub fn ipet_ctx_struct_key(fn_key: u64, ctx_digest: u64, mode: Option<&str>) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("ctx-ipet");
    h.write_u64(fn_key);
    h.write_u64(ctx_digest);
    match mode {
        Some(m) => h.write_str(m),
        None => h.write_str("\u{0}global"),
    }
    h.finish()
}

/// Full key of one per-context IPET solve: the structure key plus the
/// per-call-site `(site, WCET, BCET)` cost vector (already merged over
/// each site's callee contexts) the system was priced with.
#[must_use]
pub fn ipet_site_full_key(struct_key: u64, costs: &[(Addr, u64, u64)]) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("ctx-sites");
    h.write_u64(struct_key);
    h.write_usize(costs.len());
    for &(site, wcet, bcet) in costs {
        h.write_u32(site.0);
        h.write_u64(wcet);
        h.write_u64(bcet);
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

/// Everything the value/timing phases derive from one function, recorded
/// for replay. Bounds, times, and the cache summary refer to the
/// *analyzed* CFG — the peeled copy when `peeled` is set and unrolling is
/// on; the analyzer re-derives that CFG deterministically from the
/// reconstruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FunctionArtifact {
    /// Indirect-call target hints the value analysis recovered.
    pub hint_calls: BTreeMap<Addr, Vec<Addr>>,
    /// Indirect-jump target hints.
    pub hint_jumps: BTreeMap<Addr, Vec<Addr>>,
    /// Per-function guideline findings (empty when checking was off).
    pub findings: Vec<Finding>,
    /// Loops found in the (un-peeled) function.
    pub loops_total: usize,
    /// Loops bounded automatically.
    pub loops_auto: usize,
    /// Whether virtual unrolling changed the CFG (only meaningful for
    /// artifacts produced under `unrolling: true`).
    pub peeled: bool,
    /// Automatic loop-bound results over the analyzed CFG's forest, in
    /// loop-id order.
    pub bounds: Vec<(usize, BoundResult)>,
    /// Per-block WCET cycles over the analyzed CFG.
    pub times_wcet: Vec<u64>,
    /// Per-block BCET cycles over the analyzed CFG.
    pub times_bcet: Vec<u64>,
    /// Instruction-cache classification counts `(hit, miss, unclassified)`
    /// when an icache was configured.
    pub cache_summary: Option<(usize, usize, usize)>,
    /// Digest of the abstract pipeline entry state the block times were
    /// derived against (pipeline runs only) — the replay guard for the
    /// entry/callee asymmetry the function key cannot see.
    pub pipeline_digest: Option<u64>,
}

/// One function's *own* (non-transitive) cache footprints — the lines
/// its body can touch in the instruction and data caches, mirroring the
/// machine configuration's cache presence. A third artifact kind
/// (`fp/<key>.fpt`), keyed like function artifacts: the per-context
/// pipeline needs every function's footprint to summarize calls, but a
/// warm run only has fresh value analyses for *changed* functions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FootprintArtifact {
    /// Instruction-cache footprint (when an icache is configured).
    pub icache: Option<wcet_micro::footprint::CacheFootprint>,
    /// Data-cache footprint (when a dcache is configured).
    pub dcache: Option<wcet_micro::footprint::CacheFootprint>,
}

/// A cached `(function, mode)` IPET solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpetEntry {
    /// The full key (structure + callee costs) this solution is valid for.
    pub full_key: u64,
    /// The WCET solve.
    pub wcet: WcetResult,
    /// The BCET solve.
    pub bcet: WcetResult,
    /// Solver effort of the two solves, replayed into the phase trace on
    /// a hit so warm and cold runs render identical statistics.
    pub lp: LpStats,
}

/// Per-run incremental statistics, attached to the report when a cache
/// was in use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Functions in the final reconstruction.
    pub functions: usize,
    /// Function artifacts served from the cache in the final round.
    pub fn_hits: usize,
    /// Function artifacts computed fresh (and stored).
    pub fn_misses: usize,
    /// Functions invalidated by the dirtiness pass: changed functions
    /// plus their transitive callers.
    pub dirty: usize,
    /// `(function, mode)` IPET solutions served from the cache.
    pub ipet_hits: usize,
    /// IPET systems solved this run.
    pub ipet_solves: usize,
}

impl fmt::Display for IncrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {}/{} function artifact(s) hit, {} dirty, \
             {} IPET hit(s), {} IPET solve(s)",
            self.fn_hits, self.functions, self.dirty, self.ipet_hits, self.ipet_solves
        )
    }
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// A persistent artifact cache rooted at a directory, shared by every
/// analysis run (and every `wcet batch` request) pointed at it.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    mem_fn: HashMap<u64, FunctionArtifact>,
    mem_fp: HashMap<u64, FootprintArtifact>,
    mem_ipet: HashMap<u64, IpetEntry>,
}

impl ArtifactCache {
    /// Opens (creating if necessary) a cache directory, sweeping any
    /// stale temp files a crashed or killed writer left behind (see
    /// [`ArtifactCache::sweep_stale_tmp`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating `fn/`, `fp/`, and `ipet/`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactCache> {
        let root = root.into();
        fs::create_dir_all(root.join("fn"))?;
        fs::create_dir_all(root.join("fp"))?;
        fs::create_dir_all(root.join("ipet"))?;
        let cache = ArtifactCache {
            root,
            mem_fn: HashMap::new(),
            mem_fp: HashMap::new(),
            mem_ipet: HashMap::new(),
        };
        // Sweep each store at most once per process: the serve daemon
        // opens the cache once per request, and re-listing a large
        // store's directories every time would dwarf the analysis it
        // fronts. `gc` sweeps unconditionally. Best-effort: an
        // unreadable subdirectory degrades to no sweep, exactly like
        // an unwritable store degrades to in-memory.
        static SWEPT_ROOTS: std::sync::OnceLock<
            std::sync::Mutex<std::collections::HashSet<PathBuf>>,
        > = std::sync::OnceLock::new();
        let first_open = SWEPT_ROOTS
            .get_or_init(Default::default)
            .lock()
            .map_or(true, |mut roots| roots.insert(cache.root.clone()));
        if first_open {
            let _ = cache.sweep_stale_tmp();
        }
        Ok(cache)
    }

    /// The cache directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn fn_path(&self, key: u64) -> PathBuf {
        self.root.join("fn").join(format!("{key:016x}.art"))
    }

    fn ipet_path(&self, struct_key: u64) -> PathBuf {
        self.root
            .join("ipet")
            .join(format!("{struct_key:016x}.sol"))
    }

    /// Looks up a function artifact by content key.
    pub fn lookup_fn(&mut self, key: u64) -> Option<FunctionArtifact> {
        if let Some(a) = self.mem_fn.get(&key) {
            return Some(a.clone());
        }
        let path = self.fn_path(key);
        let bytes = fs::read(&path).ok()?;
        let artifact = decode_fn_artifact(&bytes)?;
        touch_for_lru(&path);
        self.mem_fn.insert(key, artifact.clone());
        Some(artifact)
    }

    /// Stores a function artifact (idempotent; best-effort on disk — an
    /// unwritable cache degrades to in-memory for this process).
    pub fn store_fn(&mut self, key: u64, artifact: &FunctionArtifact) {
        // Overwrite-on-difference, not skip-on-presence: after a
        // corrupted artifact was looked up (and rejected downstream), the
        // recomputed artifact must replace the bad bytes on disk.
        if self.mem_fn.get(&key) == Some(artifact) {
            return;
        }
        let _ = write_atomically(&self.fn_path(key), &encode_fn_artifact(artifact));
        self.mem_fn.insert(key, artifact.clone());
    }

    fn fp_path(&self, key: u64) -> PathBuf {
        self.root.join("fp").join(format!("{key:016x}.fpt"))
    }

    /// Looks up a function's own-footprint artifact by content key.
    pub fn lookup_fp(&mut self, key: u64) -> Option<FootprintArtifact> {
        if let Some(a) = self.mem_fp.get(&key) {
            return Some(a.clone());
        }
        let path = self.fp_path(key);
        let bytes = fs::read(&path).ok()?;
        let artifact = decode_fp_artifact(&bytes)?;
        touch_for_lru(&path);
        self.mem_fp.insert(key, artifact.clone());
        Some(artifact)
    }

    /// Stores a function's own-footprint artifact (idempotent,
    /// best-effort on disk — like [`ArtifactCache::store_fn`]).
    pub fn store_fp(&mut self, key: u64, artifact: &FootprintArtifact) {
        if self.mem_fp.get(&key) == Some(artifact) {
            return;
        }
        let _ = write_atomically(&self.fp_path(key), &encode_fp_artifact(artifact));
        self.mem_fp.insert(key, artifact.clone());
    }

    /// Looks up the IPET entry stored for a `(function, mode)` structure
    /// key. The caller must still compare [`IpetEntry::full_key`] before
    /// trusting the solution.
    pub fn lookup_ipet(&mut self, struct_key: u64) -> Option<IpetEntry> {
        if let Some(e) = self.mem_ipet.get(&struct_key) {
            return Some(e.clone());
        }
        let path = self.ipet_path(struct_key);
        let bytes = fs::read(&path).ok()?;
        let entry = decode_ipet_entry(&bytes)?;
        touch_for_lru(&path);
        self.mem_ipet.insert(struct_key, entry.clone());
        Some(entry)
    }

    /// Stores (or replaces — newest costs win) an IPET entry.
    pub fn store_ipet(&mut self, struct_key: u64, entry: &IpetEntry) {
        if self.mem_ipet.get(&struct_key) == Some(entry) {
            return;
        }
        let _ = write_atomically(&self.ipet_path(struct_key), &encode_ipet_entry(entry));
        self.mem_ipet.insert(struct_key, entry.clone());
    }
}

// ---------------------------------------------------------------------
// Garbage collection and eviction
// ---------------------------------------------------------------------

/// What one [`ArtifactCache::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Artifact files found across `fn/`, `fp/`, and `ipet/`.
    pub scanned: usize,
    /// Their total size before eviction.
    pub bytes_before: u64,
    /// Total size after eviction.
    pub bytes_after: u64,
    /// Artifact files evicted (least recently used first).
    pub evicted: usize,
    /// Stale temp files swept.
    pub tmp_swept: usize,
}

impl fmt::Display for GcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: {} artifact(s) scanned ({} bytes), {} evicted ({} bytes kept), \
             {} stale temp file(s) swept",
            self.scanned, self.bytes_before, self.evicted, self.bytes_after, self.tmp_swept
        )
    }
}

impl ArtifactCache {
    /// The artifact subdirectories, in deterministic order.
    const KINDS: [&'static str; 3] = ["fn", "fp", "ipet"];

    /// Removes temp files left behind by crashed or killed writers.
    ///
    /// A live writer's temp file exists only for the instant between
    /// `write` and `rename`; anything that lingers belongs to a process
    /// that died mid-store and would otherwise shadow the cache
    /// directory forever. A temp file is *stale* — and removed — when
    /// the pid embedded in its name is provably not running (Linux:
    /// no `/proc/<pid>`), or, where pid liveness cannot be checked, when
    /// it is over an hour old. Our own pid is always live, so two
    /// threads of this process racing a store never sweep each other.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; per-file removal errors
    /// (a concurrent sweep won the race) are ignored.
    pub fn sweep_stale_tmp(&self) -> io::Result<usize> {
        let mut swept = 0;
        for kind in Self::KINDS {
            let dir = self.root.join(kind);
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(suffix) = name.split_once(".tmp.").map(|(_, s)| s) else {
                    continue;
                };
                // `<pid>` (legacy) or `<pid>.<seq>`.
                let pid = suffix.split('.').next().and_then(|p| p.parse::<u32>().ok());
                let stale = match pid {
                    Some(pid) if pid == std::process::id() => false,
                    Some(pid) => match pid_is_live(pid) {
                        Some(live) => !live,
                        None => older_than_an_hour(&entry),
                    },
                    // Unparseable suffix: not ours, not anyone's.
                    None => true,
                };
                if stale && fs::remove_file(entry.path()).is_ok() {
                    swept += 1;
                }
            }
        }
        Ok(swept)
    }

    /// Evicts least-recently-used artifacts until the store fits under
    /// `max_bytes`, sweeping stale temp files first.
    ///
    /// The LRU stamp is the file's modification time: stores write it,
    /// and disk lookups bump it (see `touch_for_lru`), so `mtime` is a
    /// portable access clock that survives `relatime` mounts. When the
    /// store exceeds `max_bytes` (the high watermark), eviction deletes
    /// oldest-first down to the **low watermark** of ¾ · `max_bytes`, so
    /// a daemon hovering at the limit does not re-trigger on every
    /// store.
    ///
    /// Safe against concurrent writers by construction: artifacts are
    /// only ever created whole via temp-file-then-rename, so deleting a
    /// file can never expose a torn artifact — a racing writer either
    /// re-creates the entry afterwards (its rename wins) or its freshly
    /// renamed file is evicted like any other cold entry; a racing
    /// reader that already opened the file keeps its data (POSIX), and
    /// one that lost the race sees a plain miss and recomputes.
    ///
    /// In-memory copies of evicted entries are dropped too, so a
    /// long-lived process's memory footprint tracks the disk watermark.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; per-file stat/removal
    /// errors are skipped (the file raced away — which is the goal).
    pub fn gc(&mut self, max_bytes: u64) -> io::Result<GcStats> {
        let mut stats = GcStats {
            tmp_swept: self.sweep_stale_tmp().unwrap_or(0),
            ..GcStats::default()
        };
        // (mtime, path, size, kind, key) — path is the deterministic
        // tiebreak for identical stamps.
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64, usize, Option<u64>)> = Vec::new();
        for (ki, kind) in Self::KINDS.iter().enumerate() {
            let dir = self.root.join(kind);
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let expected_ext = ["art", "fpt", "sol"][ki];
                let Some(stem) = name.strip_suffix(&format!(".{expected_ext}")) else {
                    continue;
                };
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let stamp = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                let key = u64::from_str_radix(stem, 16).ok();
                files.push((stamp, entry.path(), meta.len(), ki, key));
            }
        }
        stats.scanned = files.len();
        stats.bytes_before = files.iter().map(|f| f.2).sum();
        stats.bytes_after = stats.bytes_before;
        if stats.bytes_before <= max_bytes {
            return Ok(stats);
        }
        let low_watermark = max_bytes / 4 * 3;
        files.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (_, path, size, kind, key) in files {
            if stats.bytes_after <= low_watermark {
                break;
            }
            if fs::remove_file(&path).is_err() {
                continue;
            }
            stats.bytes_after = stats.bytes_after.saturating_sub(size);
            stats.evicted += 1;
            if let Some(key) = key {
                match kind {
                    0 => {
                        self.mem_fn.remove(&key);
                    }
                    1 => {
                        self.mem_fp.remove(&key);
                    }
                    _ => {
                        self.mem_ipet.remove(&key);
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Total artifact bytes currently on disk — the serve daemon's cheap
    /// watermark probe.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for kind in Self::KINDS {
            for entry in fs::read_dir(self.root.join(kind))? {
                let entry = entry?;
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        total += meta.len();
                    }
                }
            }
        }
        Ok(total)
    }
}

/// Is `pid` a running process? `None` when the platform offers no way
/// to tell (no procfs).
fn pid_is_live(pid: u32) -> Option<bool> {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return None;
    }
    Some(proc_root.join(pid.to_string()).is_dir())
}

/// Age fallback for platforms without pid liveness: anything older than
/// an hour has long outlived the microseconds a live temp file exists.
fn older_than_an_hour(entry: &fs::DirEntry) -> bool {
    entry
        .metadata()
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > std::time::Duration::from_secs(3600))
}

/// Best-effort LRU stamp bump on a disk hit: re-stamps `mtime` so the
/// GC's oldest-first eviction spares what is actually being used.
/// Failures (read-only store, concurrent eviction) are ignored — the
/// entry just looks colder than it is.
fn touch_for_lru(path: &Path) {
    // Relatime-style: rewriting the stamp costs a write-open per hit,
    // which a busy daemon pays thousands of times a second, while GC
    // only needs minute-granular recency. Skip the write when the
    // stamp is already fresh.
    let now = std::time::SystemTime::now();
    if let Ok(meta) = fs::metadata(path) {
        if let Ok(mtime) = meta.modified() {
            let fresh = now
                .duration_since(mtime)
                .map_or(true, |age| age.as_secs() < 60);
            if fresh {
                return;
            }
        }
    }
    let _ = fs::File::options()
        .write(true)
        .open(path)
        .and_then(|f| f.set_modified(now));
}

/// Process-global temp-file sequence: the pid alone is not collision
/// proof — two threads of one process storing the same key would write
/// one temp file from both ends.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The temp path a store of `path` writes before its rename: unique per
/// (process, store) so concurrent writers — threads or processes —
/// never collide.
fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    path.with_extension(format!("tmp.{}.{seq}", std::process::id()))
}

/// Temp-file-then-rename, so a reader never observes a half-written
/// artifact even when two batch processes share the directory. A failed
/// write or rename removes its own temp file — only a *crashed* writer
/// leaves droppings, and those are swept on the next cache open.
fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let outcome = fs::write(&tmp, bytes).and_then(|()| fs::rename(&tmp, path));
    if outcome.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    outcome
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(kind: u8) -> Enc {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        buf.push(kind);
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn addr_map(&mut self, map: &BTreeMap<Addr, Vec<Addr>>) {
        self.usize(map.len());
        for (at, targets) in map {
            self.u32(at.0);
            self.usize(targets.len());
            for t in targets {
                self.u32(t.0);
            }
        }
    }

    /// Appends the payload digest and yields the final bytes. Structural
    /// validation alone cannot catch a bit flip that leaves lengths and
    /// invariants intact but changes a cycle count — the checksum turns
    /// *any* corruption into a decode failure, i.e. a cache miss.
    fn seal(mut self) -> Vec<u8> {
        let digest = wcet_isa::hash::hash_bytes(&self.buf);
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.buf
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8], kind: u8) -> Option<Dec<'a>> {
        // Verify the trailing payload digest first: flipped bits anywhere
        // in the body must read as a miss, never as data.
        if bytes.len() < 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let digest = u64::from_le_bytes(tail.try_into().ok()?);
        if wcet_isa::hash::hash_bytes(body) != digest {
            return None;
        }
        let mut d = Dec {
            bytes: body,
            pos: 0,
        };
        if d.take(4)? != MAGIC.as_slice() || d.u32()? != CACHE_VERSION || d.u8()? != kind {
            return None;
        }
        Some(d)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// A length read from untrusted bytes, sanity-capped so a corrupted
    /// file cannot request a huge allocation.
    fn len(&mut self) -> Option<usize> {
        let n = self.usize()?;
        (n <= self.bytes.len().max(1 << 20)).then_some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn addr_map(&mut self) -> Option<BTreeMap<Addr, Vec<Addr>>> {
        let n = self.len()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let at = Addr(self.u32()?);
            let k = self.len()?;
            let mut targets = Vec::with_capacity(k.min(1024));
            for _ in 0..k {
                targets.push(Addr(self.u32()?));
            }
            map.insert(at, targets);
        }
        Some(map)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn rule_to_u8(rule: RuleId) -> u8 {
    RuleId::ALL
        .iter()
        .position(|r| *r == rule)
        .expect("every rule is in ALL") as u8
}

fn rule_from_u8(v: u8) -> Option<RuleId> {
    RuleId::ALL.get(v as usize).copied()
}

fn bound_to_bytes(e: &mut Enc, result: &BoundResult) {
    match result {
        BoundResult::Bounded {
            max_iterations,
            source,
        } => {
            e.u8(0);
            e.u64(*max_iterations);
            e.u8(match source {
                BoundSource::Auto => 0,
                BoundSource::Annotation => 1,
            });
        }
        BoundResult::Unbounded { reason } => {
            e.u8(1);
            e.u8(match reason {
                UnboundedReason::FloatControlled => 0,
                UnboundedReason::ComplexCounterUpdate => 1,
                UnboundedReason::Irreducible => 2,
                UnboundedReason::DataDependent => 3,
                UnboundedReason::NoExit => 4,
                UnboundedReason::NoPattern => 5,
            });
        }
    }
}

fn bound_from_bytes(d: &mut Dec<'_>) -> Option<BoundResult> {
    match d.u8()? {
        0 => {
            let max_iterations = d.u64()?;
            let source = match d.u8()? {
                0 => BoundSource::Auto,
                1 => BoundSource::Annotation,
                _ => return None,
            };
            Some(BoundResult::Bounded {
                max_iterations,
                source,
            })
        }
        1 => {
            let reason = match d.u8()? {
                0 => UnboundedReason::FloatControlled,
                1 => UnboundedReason::ComplexCounterUpdate,
                2 => UnboundedReason::Irreducible,
                3 => UnboundedReason::DataDependent,
                4 => UnboundedReason::NoExit,
                5 => UnboundedReason::NoPattern,
                _ => return None,
            };
            Some(BoundResult::Unbounded { reason })
        }
        _ => None,
    }
}

fn encode_fn_artifact(a: &FunctionArtifact) -> Vec<u8> {
    let mut e = Enc::new(b'F');
    e.addr_map(&a.hint_calls);
    e.addr_map(&a.hint_jumps);
    e.usize(a.findings.len());
    for f in &a.findings {
        e.u8(rule_to_u8(f.rule));
        e.u32(f.addr.0);
        match f.function {
            Some(fun) => {
                e.u8(1);
                e.u32(fun.0);
            }
            None => e.u8(0),
        }
        e.str(&f.message);
    }
    e.usize(a.loops_total);
    e.usize(a.loops_auto);
    e.u8(u8::from(a.peeled));
    e.usize(a.bounds.len());
    for (id, result) in &a.bounds {
        e.usize(*id);
        bound_to_bytes(&mut e, result);
    }
    e.usize(a.times_wcet.len());
    for &t in &a.times_wcet {
        e.u64(t);
    }
    e.usize(a.times_bcet.len());
    for &t in &a.times_bcet {
        e.u64(t);
    }
    match a.cache_summary {
        Some((h, m, nc)) => {
            e.u8(1);
            e.usize(h);
            e.usize(m);
            e.usize(nc);
        }
        None => e.u8(0),
    }
    match a.pipeline_digest {
        Some(d) => {
            e.u8(1);
            e.u64(d);
        }
        None => e.u8(0),
    }
    e.seal()
}

fn decode_fn_artifact(bytes: &[u8]) -> Option<FunctionArtifact> {
    let mut d = Dec::new(bytes, b'F')?;
    let hint_calls = d.addr_map()?;
    let hint_jumps = d.addr_map()?;
    let n_findings = d.len()?;
    let mut findings = Vec::with_capacity(n_findings.min(1024));
    for _ in 0..n_findings {
        let rule = rule_from_u8(d.u8()?)?;
        let addr = Addr(d.u32()?);
        let function = match d.u8()? {
            0 => None,
            1 => Some(Addr(d.u32()?)),
            _ => return None,
        };
        let message = d.str()?;
        findings.push(Finding {
            rule,
            addr,
            function,
            message,
        });
    }
    let loops_total = d.usize()?;
    let loops_auto = d.usize()?;
    let peeled = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let n_bounds = d.len()?;
    let mut bounds = Vec::with_capacity(n_bounds.min(1024));
    for _ in 0..n_bounds {
        let id = d.usize()?;
        bounds.push((id, bound_from_bytes(&mut d)?));
    }
    let n_w = d.len()?;
    let mut times_wcet = Vec::with_capacity(n_w.min(1 << 16));
    for _ in 0..n_w {
        times_wcet.push(d.u64()?);
    }
    let n_b = d.len()?;
    let mut times_bcet = Vec::with_capacity(n_b.min(1 << 16));
    for _ in 0..n_b {
        times_bcet.push(d.u64()?);
    }
    let cache_summary = match d.u8()? {
        0 => None,
        1 => Some((d.usize()?, d.usize()?, d.usize()?)),
        _ => return None,
    };
    let pipeline_digest = match d.u8()? {
        0 => None,
        1 => Some(d.u64()?),
        _ => return None,
    };
    d.done().then_some(FunctionArtifact {
        hint_calls,
        hint_jumps,
        findings,
        loops_total,
        loops_auto,
        peeled,
        bounds,
        times_wcet,
        times_bcet,
        cache_summary,
        pipeline_digest,
    })
}

fn encode_cache_footprint(e: &mut Enc, fp: &wcet_micro::footprint::CacheFootprint) {
    use wcet_micro::footprint::SetFootprint;
    let config = fp.config();
    e.usize(config.sets);
    e.usize(config.assoc);
    e.u32(config.line_bytes);
    e.u32(config.hit_latency);
    for set in fp.sets() {
        match set {
            SetFootprint::Any => e.u8(1),
            SetFootprint::Lines(lines) => {
                e.u8(0);
                e.usize(lines.len());
                for &l in lines {
                    e.u32(l);
                }
            }
        }
    }
}

fn decode_cache_footprint(d: &mut Dec<'_>) -> Option<wcet_micro::footprint::CacheFootprint> {
    use std::collections::BTreeSet;
    use wcet_isa::cache::CacheConfig;
    use wcet_micro::footprint::{CacheFootprint, SetFootprint};
    let sets = d.usize()?;
    let assoc = d.usize()?;
    let line_bytes = d.u32()?;
    let hit_latency = d.u32()?;
    // `CacheConfig::new` panics on bad geometry; a corrupted artifact
    // must read as a miss instead.
    if sets == 0 || !sets.is_power_of_two() || sets > 1 << 20 {
        return None;
    }
    if assoc == 0 || assoc > 1 << 10 {
        return None;
    }
    if line_bytes == 0 || !line_bytes.is_power_of_two() {
        return None;
    }
    let config = CacheConfig::new(sets, assoc, line_bytes, hit_latency);
    let mut parts = Vec::with_capacity(sets);
    for _ in 0..sets {
        parts.push(match d.u8()? {
            1 => SetFootprint::Any,
            0 => {
                let n = d.len()?;
                let mut lines = BTreeSet::new();
                for _ in 0..n {
                    lines.insert(d.u32()?);
                }
                SetFootprint::Lines(lines)
            }
            _ => return None,
        });
    }
    CacheFootprint::from_parts(config, parts)
}

fn encode_fp_artifact(a: &FootprintArtifact) -> Vec<u8> {
    let mut e = Enc::new(b'P');
    for fp in [&a.icache, &a.dcache] {
        match fp {
            Some(fp) => {
                e.u8(1);
                encode_cache_footprint(&mut e, fp);
            }
            None => e.u8(0),
        }
    }
    e.seal()
}

fn decode_fp_artifact(bytes: &[u8]) -> Option<FootprintArtifact> {
    let mut d = Dec::new(bytes, b'P')?;
    let mut fps = [None, None];
    for fp in &mut fps {
        *fp = match d.u8()? {
            0 => None,
            1 => Some(decode_cache_footprint(&mut d)?),
            _ => return None,
        };
    }
    let [icache, dcache] = fps;
    d.done().then_some(FootprintArtifact { icache, dcache })
}

fn encode_wcet_result(e: &mut Enc, r: &WcetResult) {
    e.u64(r.wcet_cycles);
    e.usize(r.block_counts.len());
    for (b, c) in &r.block_counts {
        e.usize(b.0);
        e.u64(*c);
    }
    e.usize(r.worst_path.len());
    for b in &r.worst_path {
        e.usize(b.0);
    }
}

fn decode_wcet_result(d: &mut Dec<'_>) -> Option<WcetResult> {
    let wcet_cycles = d.u64()?;
    let n_counts = d.len()?;
    let mut block_counts = BTreeMap::new();
    for _ in 0..n_counts {
        let b = BlockId(d.usize()?);
        block_counts.insert(b, d.u64()?);
    }
    let n_path = d.len()?;
    let mut worst_path = Vec::with_capacity(n_path.min(1 << 16));
    for _ in 0..n_path {
        worst_path.push(BlockId(d.usize()?));
    }
    Some(WcetResult {
        wcet_cycles,
        block_counts,
        worst_path,
    })
}

fn encode_ipet_entry(entry: &IpetEntry) -> Vec<u8> {
    let mut e = Enc::new(b'I');
    e.u64(entry.full_key);
    encode_wcet_result(&mut e, &entry.wcet);
    encode_wcet_result(&mut e, &entry.bcet);
    e.u64(entry.lp.pivots);
    e.u64(entry.lp.refactorizations);
    e.u64(entry.lp.presolve_removed);
    e.seal()
}

fn decode_ipet_entry(bytes: &[u8]) -> Option<IpetEntry> {
    let mut d = Dec::new(bytes, b'I')?;
    let full_key = d.u64()?;
    let wcet = decode_wcet_result(&mut d)?;
    let bcet = decode_wcet_result(&mut d)?;
    let lp = LpStats {
        pivots: d.u64()?,
        refactorizations: d.u64()?,
        presolve_removed: d.u64()?,
    };
    d.done().then_some(IpetEntry {
        full_key,
        wcet,
        bcet,
        lp,
    })
}

// ---------------------------------------------------------------------
// Key helpers used by the analyzer
// ---------------------------------------------------------------------

/// The per-image inputs of [`function_key`] that are shared by every
/// function: computed once per reconstruction round.
#[derive(Debug, Clone, Copy)]
pub struct KeyContext {
    /// [`Image::data_hash`] of the analyzed image.
    pub data_hash: u64,
    /// [`config_fingerprint`] of the analyzer configuration.
    pub config_fp: u64,
}

impl KeyContext {
    /// Builds the shared key context for one run.
    #[must_use]
    pub fn new(image: &Image, config: &AnalyzerConfig) -> KeyContext {
        KeyContext {
            data_hash: image.data_hash(),
            config_fp: config_fingerprint(config),
        }
    }

    /// [`function_key`] with this context.
    #[must_use]
    pub fn function_key(&self, cfg: &Cfg, summaries: &HashMap<Addr, FunctionSummary>) -> u64 {
        function_key(cfg, self.data_hash, self.config_fp, summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> FunctionArtifact {
        FunctionArtifact {
            hint_calls: BTreeMap::from([(Addr(0x1010), vec![Addr(0x2000), Addr(0x2040)])]),
            hint_jumps: BTreeMap::from([(Addr(0x1020), vec![Addr(0x1100)])]),
            findings: vec![Finding {
                rule: RuleId::Misra20_4,
                addr: Addr(0x1004),
                function: Some(Addr(0x1000)),
                message: "dynamic heap allocation".to_owned(),
            }],
            loops_total: 2,
            loops_auto: 1,
            peeled: true,
            bounds: vec![
                (
                    0,
                    BoundResult::Bounded {
                        max_iterations: 16,
                        source: BoundSource::Auto,
                    },
                ),
                (
                    1,
                    BoundResult::Unbounded {
                        reason: UnboundedReason::DataDependent,
                    },
                ),
            ],
            times_wcet: vec![10, 42, 7],
            times_bcet: vec![4, 40, 7],
            cache_summary: Some((12, 3, 1)),
            pipeline_digest: Some(0x1234_5678_9abc_def0),
        }
    }

    #[test]
    fn fn_artifact_round_trip() {
        let a = sample_artifact();
        let bytes = encode_fn_artifact(&a);
        assert_eq!(decode_fn_artifact(&bytes), Some(a));
    }

    #[test]
    fn truncated_or_garbled_artifacts_are_misses() {
        let bytes = encode_fn_artifact(&sample_artifact());
        for cut in [0, 4, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(decode_fn_artifact(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert_eq!(decode_fn_artifact(&wrong_magic), None);
        let mut wrong_version = bytes.clone();
        wrong_version[4] ^= 0xff;
        assert_eq!(decode_fn_artifact(&wrong_version), None);
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(
            decode_fn_artifact(&trailing),
            None,
            "trailing bytes rejected"
        );
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        // Structural validation alone would accept flips that keep
        // lengths/invariants intact but change a cycle count; the payload
        // digest must reject *every* single-byte corruption.
        let bytes = encode_fn_artifact(&sample_artifact());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                decode_fn_artifact(&bad),
                None,
                "flip at byte {i} must read as a miss"
            );
        }
        let entry_bytes = {
            let entry = IpetEntry {
                full_key: 1,
                wcet: WcetResult {
                    wcet_cycles: 99,
                    block_counts: BTreeMap::from([(BlockId(0), 1)]),
                    worst_path: vec![BlockId(0)],
                },
                bcet: WcetResult {
                    wcet_cycles: 7,
                    block_counts: BTreeMap::new(),
                    worst_path: Vec::new(),
                },
                lp: LpStats {
                    pivots: 3,
                    refactorizations: 1,
                    presolve_removed: 2,
                },
            };
            encode_ipet_entry(&entry)
        };
        for i in 0..entry_bytes.len() {
            let mut bad = entry_bytes.clone();
            bad[i] ^= 0x01;
            assert_eq!(decode_ipet_entry(&bad), None, "flip at byte {i}");
        }
    }

    #[test]
    fn ipet_entry_round_trip() {
        let entry = IpetEntry {
            full_key: 0xdead_beef_0bad_cafe,
            wcet: WcetResult {
                wcet_cycles: 420,
                block_counts: BTreeMap::from([(BlockId(0), 1), (BlockId(2), 16)]),
                worst_path: vec![BlockId(0), BlockId(2), BlockId(2)],
            },
            bcet: WcetResult {
                wcet_cycles: 17,
                block_counts: BTreeMap::from([(BlockId(0), 1)]),
                worst_path: vec![BlockId(0)],
            },
            lp: LpStats {
                pivots: 41,
                refactorizations: 2,
                presolve_removed: 13,
            },
        };
        let bytes = encode_ipet_entry(&entry);
        assert_eq!(decode_ipet_entry(&bytes), Some(entry));
        assert_eq!(decode_fn_artifact(&bytes), None, "kind bytes are checked");
    }

    #[test]
    fn fp_artifact_round_trip_and_corruption() {
        use wcet_isa::cache::CacheConfig;
        use wcet_micro::footprint::CacheFootprint;
        let mut icache_fp = CacheFootprint::empty(&CacheConfig::small_icache());
        icache_fp.absorb_addr(Addr(0x0010_0040));
        icache_fp.absorb_addr(Addr(0x0010_0200));
        let mut dcache_fp = CacheFootprint::empty(&CacheConfig::small_dcache());
        dcache_fp.absorb_range(Addr(0x8000), Addr(0x8fff));
        let artifact = FootprintArtifact {
            icache: Some(icache_fp),
            dcache: Some(dcache_fp),
        };
        let bytes = encode_fp_artifact(&artifact);
        assert_eq!(decode_fp_artifact(&bytes), Some(artifact.clone()));
        // Flips anywhere must read as misses.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert_eq!(decode_fp_artifact(&bad), None, "flip at {i}");
        }
        // Kind bytes separate artifact families.
        assert_eq!(decode_fn_artifact(&bytes), None);
        // The cache-less variant round-trips too.
        let none = FootprintArtifact::default();
        assert_eq!(decode_fp_artifact(&encode_fp_artifact(&none)), Some(none));

        // And the store/lookup path persists across instances.
        let dir = std::env::temp_dir().join(format!("wcet-incr-fp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut cache = ArtifactCache::open(&dir).unwrap();
            assert_eq!(cache.lookup_fp(11), None);
            cache.store_fp(11, &artifact);
        }
        let mut cache = ArtifactCache::open(&dir).unwrap();
        assert_eq!(cache.lookup_fp(11), Some(artifact));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_tracks_persistence() {
        let base = AnalyzerConfig::new();
        let mut persist = base.clone();
        persist.persistence = true;
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&persist),
            "persistence forks the cache space"
        );
    }

    #[test]
    fn config_fingerprint_tracks_pipeline() {
        let base = AnalyzerConfig::new();
        let mut piped = base.clone();
        piped.pipeline = true;
        assert_ne!(
            config_fingerprint(&base),
            config_fingerprint(&piped),
            "the pipeline model forks the cache space"
        );
    }

    #[test]
    fn cache_persists_across_instances() {
        let dir = std::env::temp_dir().join(format!("wcet-incr-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = sample_artifact();
        {
            let mut cache = ArtifactCache::open(&dir).unwrap();
            assert_eq!(cache.lookup_fn(7), None);
            cache.store_fn(7, &a);
            assert_eq!(cache.lookup_fn(7), Some(a.clone()));
        }
        {
            let mut cache = ArtifactCache::open(&dir).unwrap();
            assert_eq!(cache.lookup_fn(7), Some(a), "artifact survived the process");
            assert_eq!(cache.lookup_fn(8), None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_mode_and_costs() {
        let k = ipet_struct_key(1, None);
        assert_ne!(k, ipet_struct_key(1, Some("ground")));
        assert_ne!(k, ipet_struct_key(2, None));
        let costs = [(Addr(0x2000), 10, 5)];
        assert_ne!(ipet_full_key(k, &costs), ipet_full_key(k, &[]));
        assert_ne!(
            ipet_full_key(k, &costs),
            ipet_full_key(k, &[(Addr(0x2000), 11, 5)])
        );
        assert_eq!(ipet_full_key(k, &costs), ipet_full_key(k, &costs));
    }

    #[test]
    fn config_fingerprint_tracks_semantic_fields_not_parallelism() {
        let base = AnalyzerConfig::new();
        let fp = config_fingerprint(&base);
        let mut threads = base.clone();
        threads.parallelism = Some(3);
        assert_eq!(
            fp,
            config_fingerprint(&threads),
            "one cache for all thread counts"
        );
        let mut unroll = base.clone();
        unroll.unrolling = true;
        assert_ne!(fp, config_fingerprint(&unroll));
        let mut machine = base;
        machine.machine = wcet_isa::interp::MachineConfig::with_caches();
        assert_ne!(fp, config_fingerprint(&machine));
    }

    #[test]
    fn tmp_siblings_never_collide() {
        let base = Path::new("/store/fn/00ff.art");
        let a = tmp_sibling(base);
        let b = tmp_sibling(base);
        assert_ne!(a, b, "two stores of one key need two temp files");
        for p in [&a, &b] {
            let name = p.file_name().unwrap().to_str().unwrap();
            let suffix = name.split_once(".tmp.").unwrap().1;
            let mut parts = suffix.split('.');
            assert_eq!(
                parts.next().unwrap().parse::<u32>().unwrap(),
                std::process::id()
            );
            parts.next().unwrap().parse::<u64>().unwrap();
            assert_eq!(parts.next(), None);
        }
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open_but_live_ones_survive() {
        let dir = std::env::temp_dir().join(format!("wcet-incr-sweep-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Plant the leftovers before the first open: the open-time
        // sweep runs once per store root per process.
        for sub in ["fn", "fp", "ipet"] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        // A pid far above any kernel pid_max: provably dead.
        let dead_pid = 4_000_000_000u32;
        let legacy = dir.join("fn").join(format!("aa.art.tmp.{dead_pid}"));
        let seqed = dir.join("fp").join(format!("bb.fpt.tmp.{dead_pid}.17"));
        let garbled = dir.join("ipet").join("cc.sol.tmp.notapid");
        let ours = dir
            .join("fn")
            .join(format!("dd.art.tmp.{}.3", std::process::id()));
        for p in [&legacy, &seqed, &garbled, &ours] {
            fs::write(p, b"half-written").unwrap();
        }
        let real = dir.join("fn").join("00ff.art");
        fs::write(&real, b"not a tmp file").unwrap();

        let cache = ArtifactCache::open(&dir).unwrap();
        assert!(!legacy.exists(), "dead-pid legacy tmp swept");
        assert!(!seqed.exists(), "dead-pid seq tmp swept");
        assert!(!garbled.exists(), "unparseable tmp swept");
        assert!(ours.exists(), "own-pid tmp is a live writer, kept");
        assert!(real.exists(), "artifacts are never touched by the sweep");
        // Re-sweeping is idempotent (only `ours` and `real` remain).
        assert_eq!(cache.sweep_stale_tmp().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_down_to_the_low_watermark() {
        let dir = std::env::temp_dir().join(format!("wcet-incr-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::open(&dir).unwrap();
        let artifact = sample_artifact();
        for key in 1..=8u64 {
            cache.store_fn(key, &artifact);
        }
        let per_file = fs::metadata(cache.fn_path(1)).unwrap().len();
        // Backdate keys 1..=4 so they are the LRU tail; 1 is coldest.
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        for key in 1..=4u64 {
            let age = std::time::Duration::from_secs(1_000_000 + key);
            fs::File::options()
                .write(true)
                .open(cache.fn_path(key))
                .unwrap()
                .set_modified(epoch + age)
                .unwrap();
        }

        // Under the watermark: nothing happens.
        let idle = cache.gc(per_file * 100).unwrap();
        assert_eq!(idle.evicted, 0);
        assert_eq!(idle.scanned, 8);
        assert_eq!(idle.bytes_before, idle.bytes_after);

        // Over it: evict oldest-first until ≤ ¾·max. max = 6 files, low
        // watermark = 4.5 files, so exactly the 4 backdated ones go.
        let stats = cache.gc(per_file * 6).unwrap();
        assert_eq!(stats.evicted, 4, "{stats}");
        assert_eq!(stats.bytes_after, per_file * 4);
        assert!(stats.bytes_after <= per_file * 6 / 4 * 3);
        for key in 1..=4u64 {
            assert!(!cache.fn_path(key).exists(), "cold key {key} evicted");
            assert_eq!(cache.lookup_fn(key), None, "mem copy evicted too");
        }
        for key in 5..=8u64 {
            assert_eq!(
                cache.lookup_fn(key),
                Some(artifact.clone()),
                "warm key {key} survives"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hits_bump_the_lru_stamp() {
        let dir = std::env::temp_dir().join(format!("wcet-incr-lru-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let artifact = sample_artifact();
        {
            let mut cache = ArtifactCache::open(&dir).unwrap();
            cache.store_fn(42, &artifact);
        }
        let path = {
            let cache = ArtifactCache::open(&dir).unwrap();
            cache.fn_path(42)
        };
        let backdated = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1);
        fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_modified(backdated)
            .unwrap();
        let mut cache = ArtifactCache::open(&dir).unwrap();
        assert_eq!(cache.lookup_fn(42), Some(artifact));
        let stamped = fs::metadata(&path).unwrap().modified().unwrap();
        assert!(
            stamped > backdated + std::time::Duration::from_secs(3600),
            "disk hit re-stamps mtime so GC sees the entry as hot"
        );
        // Relatime discipline: a hit on an already-fresh entry leaves
        // the stamp alone (no write-open per lookup in a busy daemon).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut reopened = ArtifactCache::open(&dir).unwrap();
        assert_eq!(reopened.lookup_fn(42), Some(sample_artifact()));
        let restamped = fs::metadata(&path).unwrap().modified().unwrap();
        assert_eq!(restamped, stamped, "fresh stamps are not rewritten");
        let _ = fs::remove_dir_all(&dir);
    }
}
