//! The long-lived analysis service behind `wcet serve`.
//!
//! The paper's industrial framing treats WCET analysis as a routine
//! certification step: a build farm fires streams of mostly-identical
//! requests at an analysis *service*, not at one-shot CLI invocations.
//! This module is that service's engine, shared by the Unix-socket
//! daemon and the `--stdio` mode:
//!
//! * **Request protocol** — one request per line, in exactly the batch
//!   manifest syntax: `<program.s> [annotations] [--isa <name>]`, `#`
//!   comments (only at start-of-line or after whitespace — `#` can appear
//!   in file names), blank lines ignored, plus the control line
//!   `@shutdown`. The `--isa` token overrides the daemon's CLI-level ISA
//!   selector for that one request, so a single stream can mix backends.
//! * **Response framing** — requests are answered **in request order**
//!   with length-prefixed frames, so a client can carry reports with
//!   embedded newlines over one stream:
//!
//!   ```text
//!   ok <seq> <len>\n<len bytes of report>
//!   err <seq> <len>\n<len bytes of error text>
//!   bye <requests> <failures>\n
//!   ```
//!
//!   The `ok` payload is byte-identical to single-shot `wcet` stdout for
//!   the same request (the integration tests hold it to that). `bye`
//!   closes every connection — after EOF or `@shutdown` — and carries
//!   the per-connection request/failure totals.
//! * **Error isolation** — a failing request produces an `err` frame and
//!   the loop continues; one poison request can never kill the daemon.
//!   This is the same policy `wcet batch` applies per manifest line.
//! * **In-flight dedup** — concurrent identical requests (same config
//!   fingerprint, same program bytes, same annotation bytes) compute
//!   once: the first arrival becomes the leader, followers block on its
//!   slot and share the finished report (`Arc<str>`, no copy). The
//!   artifact cache already dedups *across time*; this table dedups
//!   *across simultaneous connections*, where both would otherwise miss
//!   the cache and burn a full analysis each.
//!
//! Concurrency shape: each connection is handled by one thread that
//! processes its requests sequentially (which makes in-order responses
//! trivial), while every analysis fans its `(function, context)` units
//! out over one shared persistent [`WorkerPool`]. Request-level thunks
//! deliberately do **not** run on that pool: a pool worker blocking in a
//! nested `map_in_order` latch while all of its siblings do the same
//! would deadlock the queue. Connection threads are external callers, so
//! the pool's caller-participation guarantee applies and a saturated
//! pool still makes progress.
//!
//! [`WorkerPool`]: crate::parallel::WorkerPool

use std::collections::HashMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use wcet_isa::hash::StableHasher;
use wcet_isa::IsaKind;

// ---------------------------------------------------------------------
// Request lines
// ---------------------------------------------------------------------

/// Strips a manifest/serve comment: `#` opens a comment only at the
/// start of the line or after whitespace, so `build#42/prog.s` is a
/// path, while `prog.s # smoke test` is a request plus a comment.
#[must_use]
pub fn strip_comment(raw: &str) -> &str {
    let bytes = raw.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            return &raw[..i];
        }
    }
    raw
}

/// One parsed line of the request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestLine {
    /// Blank or comment-only: skipped without a response frame.
    Empty,
    /// The `@shutdown` control line: answer `bye`, stop the daemon.
    Shutdown,
    /// An analysis request: program path, optional annotation path, and
    /// an optional per-request ISA override (`--isa <name>` anywhere on
    /// the line); `None` means the daemon's CLI-level selector applies.
    Analyze {
        program: PathBuf,
        annotations: Option<PathBuf>,
        isa: Option<IsaKind>,
    },
    /// A syntactically broken request line (bad `--isa`, stray tokens):
    /// answered with an `err` frame so the stream keeps its framing.
    Malformed { message: String },
}

/// Parses one raw line of a manifest or serve stream.
#[must_use]
pub fn parse_request_line(raw: &str) -> RequestLine {
    let line = strip_comment(raw).trim();
    if line.is_empty() {
        return RequestLine::Empty;
    }
    if line == "@shutdown" {
        return RequestLine::Shutdown;
    }
    let mut fields = line.split_whitespace();
    let mut positional: Vec<&str> = Vec::new();
    let mut isa = None;
    while let Some(token) = fields.next() {
        if token == "--isa" {
            let Some(name) = fields.next() else {
                return RequestLine::Malformed {
                    message: "`--isa` needs a value".to_owned(),
                };
            };
            match IsaKind::parse(name) {
                Some(kind) => isa = Some(kind),
                None => {
                    return RequestLine::Malformed {
                        message: format!("unknown ISA `{name}` (expected one of: house, rv32i)"),
                    }
                }
            }
        } else {
            positional.push(token);
        }
    }
    if positional.len() > 2 {
        return RequestLine::Malformed {
            message: format!(
                "expected `<program.s> [annotations] [--isa <name>]`, got extra token `{}`",
                positional[2]
            ),
        };
    }
    let Some(&program) = positional.first() else {
        return RequestLine::Malformed {
            message: "missing program path".to_owned(),
        };
    };
    RequestLine::Analyze {
        program: PathBuf::from(program),
        annotations: positional.get(1).map(PathBuf::from),
        isa,
    }
}

// ---------------------------------------------------------------------
// The service: handler + in-flight dedup
// ---------------------------------------------------------------------

/// The per-request analysis closure: loads the program (and optional
/// annotations), runs the pipeline under the request's ISA override (or
/// the daemon's default when `None`), and returns the rendered report —
/// byte-identical to single-shot `wcet` stdout — or a one-line error.
/// Lives in the binary crate, which owns option parsing and rendering.
pub type Handler =
    dyn Fn(&Path, Option<&Path>, Option<IsaKind>) -> Result<String, String> + Send + Sync;

/// A completed-or-pending request shared between a dedup leader and its
/// followers.
struct InflightSlot {
    /// `None` while the leader computes; the shared outcome afterwards.
    outcome: Mutex<Option<Result<Arc<str>, Arc<str>>>>,
    ready: Condvar,
}

/// The shared engine of one daemon: the analysis handler plus the
/// in-flight dedup table. One instance serves every connection.
pub struct AnalysisService {
    handler: Box<Handler>,
    /// [`crate::incr::config_fingerprint`] of the daemon's analyzer
    /// configuration — the config half of the dedup key, mirroring the
    /// artifact cache's keying.
    fingerprint: u64,
    inflight: Mutex<HashMap<u64, Arc<InflightSlot>>>,
    dedup_hits: AtomicU64,
}

impl std::fmt::Debug for AnalysisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisService")
            .field("fingerprint", &self.fingerprint)
            .field("dedup_hits", &self.dedup_hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl AnalysisService {
    /// A service running `handler` for each request, deduping in-flight
    /// requests under the given config fingerprint.
    #[must_use]
    pub fn new(fingerprint: u64, handler: Box<Handler>) -> AnalysisService {
        AnalysisService {
            handler,
            fingerprint,
            inflight: Mutex::new(HashMap::new()),
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// How many requests were answered from another request's in-flight
    /// computation instead of computing themselves.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// The dedup key: config fingerprint + program bytes + annotation
    /// bytes + the per-request ISA override. Content-addressed like the
    /// artifact cache, so two paths to one file dedup too. The daemon's
    /// *default* ISA is already inside the fingerprint; the override is
    /// hashed separately so one stream mixing backends over identical
    /// bytes never shares a report across ISAs. `None` when an input
    /// cannot be read — then the request runs undeduped and the handler
    /// reports the real error.
    fn request_key(
        &self,
        program: &Path,
        annotations: Option<&Path>,
        isa: Option<IsaKind>,
    ) -> Option<u64> {
        let mut h = StableHasher::new();
        h.write_u64(self.fingerprint);
        let source = fs::read(program).ok()?;
        h.write(&source);
        match annotations {
            Some(path) => {
                h.write_u32(1);
                h.write(&fs::read(path).ok()?);
            }
            None => h.write_u32(0),
        }
        match isa {
            Some(kind) => {
                h.write_u32(1);
                h.write_str(kind.name());
            }
            None => h.write_u32(0),
        }
        Some(h.finish())
    }

    /// Runs one request through the dedup table: the first arrival for a
    /// key computes, concurrent arrivals for the same key block and
    /// share the outcome.
    ///
    /// # Errors
    ///
    /// Returns the handler's error text (shared verbatim by deduped
    /// followers).
    ///
    /// # Panics
    ///
    /// Propagates a panicking handler to the leader's caller; followers
    /// of a panicked leader would otherwise hang, so the slot is
    /// published (as an error) before unwinding continues.
    pub fn process(
        &self,
        program: &Path,
        annotations: Option<&Path>,
        isa: Option<IsaKind>,
    ) -> Result<Arc<str>, Arc<str>> {
        let Some(key) = self.request_key(program, annotations, isa) else {
            return (self.handler)(program, annotations, isa)
                .map(Arc::from)
                .map_err(Arc::from);
        };
        let (slot, leader) = {
            let mut table = self.inflight.lock().expect("inflight table");
            match table.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot = Arc::new(InflightSlot {
                        outcome: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    e.insert(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (self.handler)(program, annotations, isa)
            }));
            let outcome: Result<Arc<str>, Arc<str>> = match &run {
                Ok(result) => result
                    .as_ref()
                    .map(|s| Arc::from(s.as_str()))
                    .map_err(|e| Arc::from(e.as_str())),
                Err(_) => Err(Arc::from("analysis panicked")),
            };
            *slot.outcome.lock().expect("inflight slot") = Some(outcome.clone());
            slot.ready.notify_all();
            self.inflight.lock().expect("inflight table").remove(&key);
            match run {
                Ok(_) => outcome,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        } else {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            let mut guard = slot.outcome.lock().expect("inflight slot");
            while guard.is_none() {
                guard = slot.ready.wait(guard).expect("inflight slot");
            }
            guard.clone().expect("published outcome")
        }
    }
}

// ---------------------------------------------------------------------
// Connection loop and framing
// ---------------------------------------------------------------------

/// What one connection did, reported after its `bye` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Analysis requests answered (ok or err frames written).
    pub requests: u64,
    /// Of those, how many answered with an `err` frame.
    pub failures: u64,
    /// Whether the connection ended with `@shutdown` (vs plain EOF).
    pub shutdown: bool,
}

/// Writes one length-prefixed response frame.
fn write_frame(w: &mut impl Write, kind: &str, seq: u64, payload: &str) -> io::Result<()> {
    write!(w, "{kind} {seq} {}\n{payload}", payload.len())?;
    w.flush()
}

/// Serves one request stream to completion: reads request lines, writes
/// response frames in request order, always finishes with a `bye` frame.
/// Used verbatim by the Unix-socket daemon (per connection) and by
/// `wcet serve --stdio`.
///
/// # Errors
///
/// Only transport errors (a dropped connection) abort the loop; analysis
/// failures become `err` frames and the stream continues.
pub fn serve_connection(
    service: &AnalysisService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<ConnectionStats> {
    let mut stats = ConnectionStats::default();
    for line in reader.lines() {
        match parse_request_line(&line?) {
            RequestLine::Empty => {}
            RequestLine::Shutdown => {
                stats.shutdown = true;
                break;
            }
            RequestLine::Analyze {
                program,
                annotations,
                isa,
            } => {
                stats.requests += 1;
                let seq = stats.requests;
                match service.process(&program, annotations.as_deref(), isa) {
                    Ok(report) => write_frame(&mut writer, "ok", seq, &report)?,
                    Err(error) => {
                        stats.failures += 1;
                        let mut text = error.to_string();
                        if !text.ends_with('\n') {
                            text.push('\n');
                        }
                        write_frame(&mut writer, "err", seq, &text)?;
                    }
                }
            }
            RequestLine::Malformed { message } => {
                stats.requests += 1;
                stats.failures += 1;
                let seq = stats.requests;
                write_frame(&mut writer, "err", seq, &format!("{message}\n"))?;
            }
        }
    }
    writeln!(writer, "bye {} {}", stats.requests, stats.failures)?;
    writer.flush()?;
    Ok(stats)
}

/// What a whole daemon run did, reported when the listener stops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests answered across all connections.
    pub requests: u64,
    /// Of those, answered with an `err` frame.
    pub failures: u64,
}

/// Runs the daemon on a Unix socket at `socket`: accepts connections
/// until one of them sends `@shutdown`, serving each on its own thread
/// against the shared `service`. A stale socket file from a dead daemon
/// is replaced; the socket is removed again on clean shutdown.
///
/// `on_ready` runs once the listener is bound — the CLI prints its
/// "listening" line from there, so clients (and the CI smoke test) can
/// synchronize on it.
///
/// # Errors
///
/// Returns bind/accept errors. Per-connection transport errors are
/// printed to stderr and do not stop the daemon.
pub fn serve_unix(
    service: &Arc<AnalysisService>,
    socket: &Path,
    on_ready: impl FnOnce(),
) -> io::Result<ServeSummary> {
    let _ = fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    on_ready();
    let stop = Arc::new(AtomicBool::new(false));
    let totals = Arc::new(Mutex::new(ServeSummary::default()));
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        totals.lock().expect("serve totals").connections += 1;
        let service = Arc::clone(service);
        let stop = Arc::clone(&stop);
        let totals = Arc::clone(&totals);
        let socket = socket.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let outcome = stream.try_clone().and_then(|read_half| {
                serve_connection(&service, BufReader::new(read_half), stream)
            });
            match outcome {
                Ok(stats) => {
                    let mut t = totals.lock().expect("serve totals");
                    t.requests += stats.requests;
                    t.failures += stats.failures;
                    drop(t);
                    if stats.shutdown {
                        stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the flag.
                        let _ = UnixStream::connect(&socket);
                    }
                }
                Err(error) => eprintln!("wcet serve: connection error: {error}"),
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    let _ = fs::remove_file(socket);
    let summary = *totals.lock().expect("serve totals");
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn comments_open_only_at_start_or_after_whitespace() {
        assert_eq!(strip_comment("# whole line"), "");
        assert_eq!(strip_comment("prog.s # trailing"), "prog.s ");
        assert_eq!(strip_comment("prog.s\t#tab-led"), "prog.s\t");
        assert_eq!(strip_comment("build#42/prog.s"), "build#42/prog.s");
        assert_eq!(
            strip_comment("build#42/prog.s ann#1.txt # note"),
            "build#42/prog.s ann#1.txt "
        );
        assert_eq!(strip_comment(""), "");
    }

    #[test]
    fn request_lines_parse() {
        assert_eq!(parse_request_line("   "), RequestLine::Empty);
        assert_eq!(parse_request_line("# comment"), RequestLine::Empty);
        assert_eq!(parse_request_line(" @shutdown "), RequestLine::Shutdown);
        assert_eq!(
            parse_request_line("p.s"),
            RequestLine::Analyze {
                program: PathBuf::from("p.s"),
                annotations: None,
                isa: None,
            }
        );
        assert_eq!(
            parse_request_line("dir#7/p.s a.txt # note"),
            RequestLine::Analyze {
                program: PathBuf::from("dir#7/p.s"),
                annotations: Some(PathBuf::from("a.txt")),
                isa: None,
            }
        );
    }

    #[test]
    fn request_lines_parse_isa_overrides() {
        // The `--isa` token works in any position, with or without
        // annotations.
        assert_eq!(
            parse_request_line("p.s --isa rv32i"),
            RequestLine::Analyze {
                program: PathBuf::from("p.s"),
                annotations: None,
                isa: Some(IsaKind::Rv32i),
            }
        );
        assert_eq!(
            parse_request_line("--isa house p.s a.txt # note"),
            RequestLine::Analyze {
                program: PathBuf::from("p.s"),
                annotations: Some(PathBuf::from("a.txt")),
                isa: Some(IsaKind::House),
            }
        );
        // Broken lines degrade to err frames, not panics or silent drops.
        assert!(matches!(
            parse_request_line("p.s --isa"),
            RequestLine::Malformed { .. }
        ));
        assert!(matches!(
            parse_request_line("p.s --isa mips"),
            RequestLine::Malformed { .. }
        ));
        assert!(matches!(
            parse_request_line("--isa rv32i"),
            RequestLine::Malformed { .. }
        ));
        assert!(matches!(
            parse_request_line("p.s a.txt extra.txt"),
            RequestLine::Malformed { .. }
        ));
    }

    /// A service whose handler counts invocations and waits until the
    /// test observed at least one dedup follower, making the
    /// compute-once assertion deterministic.
    fn counting_service(
        computed: &'static AtomicUsize,
        gate: &'static AtomicBool,
    ) -> AnalysisService {
        AnalysisService::new(
            0,
            Box::new(move |program, _, _| {
                computed.fetch_add(1, Ordering::SeqCst);
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(format!("report for {}", program.display()))
            }),
        )
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        static COMPUTED: AtomicUsize = AtomicUsize::new(0);
        static GATE: AtomicBool = AtomicBool::new(false);
        let dir = std::env::temp_dir().join(format!("wcet-serve-dedup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let program = dir.join("p.s");
        fs::write(&program, "add r1, r1, 1\n").unwrap();

        let service = Arc::new(counting_service(&COMPUTED, &GATE));
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let service = Arc::clone(&service);
                let program = program.clone();
                std::thread::spawn(move || service.process(&program, None, None))
            })
            .collect();
        // Wait until every non-leader parked on the slot, then release
        // the leader: exactly one computation can have started.
        while service.dedup_hits() < 2 {
            std::thread::yield_now();
        }
        GATE.store(true, Ordering::SeqCst);
        for handle in followers {
            let report = handle.join().expect("follower").expect("handler ok");
            assert_eq!(&*report, &format!("report for {}", program.display()));
        }
        assert_eq!(COMPUTED.load(Ordering::SeqCst), 1, "computed exactly once");
        assert_eq!(service.dedup_hits(), 2);

        // The slot is gone afterwards: a new request recomputes.
        let again = service.process(&program, None, None).expect("recompute");
        assert_eq!(COMPUTED.load(Ordering::SeqCst), 2);
        assert!(again.contains("report for"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn isa_override_forks_the_dedup_key() {
        static COMPUTED: AtomicUsize = AtomicUsize::new(0);
        static GATE: AtomicBool = AtomicBool::new(false);
        let dir = std::env::temp_dir().join(format!("wcet-serve-isa-key-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let program = dir.join("p.s");
        fs::write(&program, "add r1, r1, 1\n").unwrap();

        // Identical bytes, different per-request ISA: both must compute —
        // a dedup hit here would hand an rv32i client a house report.
        let service = Arc::new(counting_service(&COMPUTED, &GATE));
        let house = {
            let service = Arc::clone(&service);
            let program = program.clone();
            std::thread::spawn(move || service.process(&program, None, None))
        };
        while COMPUTED.load(Ordering::SeqCst) < 1 {
            std::thread::yield_now();
        }
        let rv32 = {
            let service = Arc::clone(&service);
            let program = program.clone();
            std::thread::spawn(move || service.process(&program, None, Some(IsaKind::Rv32i)))
        };
        // The rv32i request misses the in-flight slot and starts its own
        // computation while the house leader is still parked on the gate.
        while COMPUTED.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        GATE.store(true, Ordering::SeqCst);
        house.join().expect("house").expect("handler ok");
        rv32.join().expect("rv32").expect("handler ok");
        assert_eq!(COMPUTED.load(Ordering::SeqCst), 2, "no cross-ISA sharing");
        assert_eq!(service.dedup_hits(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_isa_stream_frames_in_order() {
        let dir = std::env::temp_dir().join(format!("wcet-serve-mixed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let prog = dir.join("p.s");
        fs::write(&prog, "halt\n").unwrap();
        // The handler tags its report with the resolved ISA, standing in
        // for the real pipeline whose reports differ per backend.
        let service = AnalysisService::new(
            0,
            Box::new(|_, _, isa| {
                let name = isa.map_or("default", IsaKind::name);
                Ok(format!("isa:{name}\n"))
            }),
        );
        let input = format!(
            "{p}\n{p} --isa rv32i\n{p} --isa house\n{p} --isa m68k\n@shutdown\n",
            p = prog.display()
        );
        let mut out = Vec::new();
        let stats = serve_connection(&service, input.as_bytes(), &mut out).expect("serve");
        assert_eq!(
            stats,
            ConnectionStats {
                requests: 4,
                failures: 1,
                shutdown: true,
            }
        );
        let error = "unknown ISA `m68k` (expected one of: house, rv32i)\n";
        let expected = format!(
            "ok 1 12\nisa:default\nok 2 10\nisa:rv32i\nok 3 10\nisa:house\nerr 4 {}\n{error}bye 4 1\n",
            error.len(),
        );
        assert_eq!(String::from_utf8(out).expect("utf8"), expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn connection_isolates_failures_and_frames_in_order() {
        let dir = std::env::temp_dir().join(format!("wcet-serve-conn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.s");
        fs::write(&good, "ok\n").unwrap();
        let service = AnalysisService::new(
            0,
            Box::new(|program, _, _| {
                if program.exists() {
                    Ok(format!("report:{}\n", program.display()))
                } else {
                    Err(format!("no such program: {}", program.display()))
                }
            }),
        );
        let input = format!(
            "# corpus\n{good}\nmissing.s\n\n{good} # again\n@shutdown\nignored.s\n",
            good = good.display()
        );
        let mut out = Vec::new();
        let stats = serve_connection(&service, input.as_bytes(), &mut out).expect("serve");
        assert_eq!(
            stats,
            ConnectionStats {
                requests: 3,
                failures: 1,
                shutdown: true,
            }
        );
        let report = format!("report:{}\n", good.display());
        let error = "no such program: missing.s\n";
        let expected = format!(
            "ok 1 {rl}\n{report}err 2 {el}\n{error}ok 3 {rl}\n{report}bye 3 1\n",
            rl = report.len(),
            el = error.len(),
        );
        assert_eq!(String::from_utf8(out).expect("utf8"), expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eof_without_shutdown_still_says_bye() {
        let service = AnalysisService::new(0, Box::new(|_, _, _| Ok("r\n".to_owned())));
        let mut out = Vec::new();
        let stats = serve_connection(&service, &b""[..], &mut out).expect("serve");
        assert_eq!(stats, ConnectionStats::default());
        assert_eq!(out, b"bye 0 0\n");
    }
}
