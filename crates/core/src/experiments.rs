//! One driver per reproduced paper artifact (tables, figures, claims).
//!
//! Each function regenerates one experiment from the paper (see
//! DESIGN.md's experiment index) and returns a printable [`Experiment`]
//! with the same rows/series the paper reports. The bench harness in
//! `crates/bench` wraps these, and EXPERIMENTS.md records paper-vs-measured.

use std::fmt;

use wcet_analysis::analyze_function;
use wcet_arith::histogram::{paper_pathological_inputs, run_table1, Table1Config};
use wcet_arith::kernels::{ldivmod_kernel, restoring_kernel};
use wcet_arith::ldivmod::correction_bound;
use wcet_cfg::graph::{reconstruct, TargetResolver};
use wcet_guidelines::annot::AnnotationSet;
use wcet_guidelines::rules::RuleId;
use wcet_isa::asm::assemble;
use wcet_isa::cache::CacheConfig;
use wcet_isa::interp::{Interpreter, MachineConfig};
use wcet_isa::{Addr, Image};
use wcet_micro::blocktime::BlockTimes;
use wcet_micro::cacheanalysis::CacheAnalysis;
use wcet_path::ipet;

use crate::analyzer::{AnalyzeError, AnalyzerConfig, WcetAnalyzer};
use crate::workload;

/// A regenerated experiment: id, provenance, and result rows.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment id from DESIGN.md (`E1`..`E16`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What in the paper this reproduces.
    pub paper_ref: &'static str,
    /// `(label, value)` result rows.
    pub rows: Vec<(String, String)>,
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── {} — {} ({}) ──", self.id, self.title, self.paper_ref)?;
        let width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.rows {
            writeln!(f, "  {label:<width$}  {value}")?;
        }
        Ok(())
    }
}

fn row(label: impl Into<String>, value: impl fmt::Display) -> (String, String) {
    (label.into(), value.to_string())
}

fn analyze_with(
    image: &Image,
    annots: &AnnotationSet,
    machine: MachineConfig,
) -> Result<crate::analyzer::AnalysisReport, AnalyzeError> {
    let config = AnalyzerConfig {
        machine,
        annotations: annots.clone(),
        ..AnalyzerConfig::new()
    };
    WcetAnalyzer::with_config(config).analyze(image)
}

fn observed_cycles(
    image: &Image,
    machine: MachineConfig,
    setup: impl FnOnce(&mut Interpreter),
) -> u64 {
    let mut interp = Interpreter::with_config(image, machine);
    setup(&mut interp);
    interp.run(50_000_000).expect("workload halts").cycles
}

// ---------------------------------------------------------------------
// E1: Table 1 — lDivMod iteration counts
// ---------------------------------------------------------------------

/// E1: regenerates Table 1 (iteration-count histogram of `ldivmod` over
/// random inputs, the paper's bucket boundaries, plus the paper's three
/// pathological inputs run through our routine).
#[must_use]
pub fn e1_table1(samples: u64) -> Experiment {
    let hist = run_table1(&Table1Config {
        samples,
        ..Table1Config::default()
    });
    let mut rows: Vec<(String, String)> = hist
        .rows()
        .into_iter()
        .map(|(label, count)| (format!("iterations {label}"), count.to_string()))
        .collect();
    rows.push(row("samples", samples));
    rows.push(row(
        "one-iteration fraction (paper: >99.8 %)",
        format!("{:.4} %", 100.0 * hist.one_iteration_fraction()),
    ));
    rows.push(row(
        "0..=2-iteration fraction (paper: >99.999 %)",
        format!("{:.5} %", 100.0 * hist.upto_two_fraction()),
    ));
    rows.push(row("max iterations (paper: 204)", hist.max_iterations));
    for ((n, d), iters) in paper_pathological_inputs() {
        rows.push(row(
            format!("ldivmod(0x{n:08x}, 0x{d:08x}) (paper: 156/186/204)"),
            iters,
        ));
    }
    Experiment {
        id: "E1",
        title: "software-arithmetic iteration histogram",
        paper_ref: "Table 1",
        rows,
    }
}

// ---------------------------------------------------------------------
// E2: Figure 1 — the analysis pipeline
// ---------------------------------------------------------------------

/// E2: regenerates Figure 1 — runs the full phase pipeline on the
/// message-handler workload and reports every phase's artifacts.
#[must_use]
pub fn e2_pipeline() -> Experiment {
    let w = workload::message_handler(16);
    let report = analyze_with(&w.image, &w.annotations, MachineConfig::with_caches())
        .expect("annotated message handler analyzes");
    let mut rows = Vec::new();
    for line in report.trace.to_string().lines() {
        rows.push(row("", line));
    }
    rows.push(row("task WCET bound (cycles)", report.wcet_cycles));
    Experiment {
        id: "E2",
        title: "phases of WCET computation",
        paper_ref: "Figure 1",
        rows,
    }
}

// ---------------------------------------------------------------------
// E3/E4: rules 13.4 and 13.6 — loop-bound analysis failures
// ---------------------------------------------------------------------

/// E3: rule 13.4 — an integer-controlled loop is bounded automatically;
/// the float-controlled equivalent is rejected with the 13.4 diagnosis
/// and needs an annotation.
#[must_use]
pub fn e3_rule_13_4() -> Experiment {
    let int_loop = assemble("main: li r1, 10\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt")
        .expect("assembles");
    let float_loop = assemble(
        r#"
        main: fmov f0, r0
              li   r1, 0x3f800000
              fmov f1, r1
              li   r1, 0x41200000
              fmov f2, r1
        loop: fadd f0, f0, f1
              fblt f0, f2, loop
              halt
        "#,
    )
    .expect("assembles");

    let mut rows = Vec::new();
    let ok = WcetAnalyzer::new()
        .analyze(&int_loop)
        .expect("int loop analyzes");
    rows.push(row("integer counter loop: WCET (cycles)", ok.wcet_cycles));
    rows.push(row(
        "integer counter loop: bounded automatically",
        ok.trace.loops_bounded_auto,
    ));
    let err = WcetAnalyzer::new().analyze(&float_loop).unwrap_err();
    rows.push(row("float-controlled loop: analysis result", &err));
    let header = float_loop.symbol("loop").expect("label");
    let annots = AnnotationSet::parse(&format!("loop {header} bound 10;")).expect("parses");
    let fixed = analyze_with(&float_loop, &annots, MachineConfig::simple())
        .expect("annotated float loop analyzes");
    rows.push(row(
        "float loop + design-level bound annotation: WCET (cycles)",
        fixed.wcet_cycles,
    ));
    Experiment {
        id: "E3",
        title: "floating-point loop control defeats loop analysis",
        paper_ref: "Section 4.2, rule 13.4",
        rows,
    }
}

/// E4: rule 13.6 — modifying the loop counter in the body defeats bound
/// detection; the clean counter version is bounded automatically.
#[must_use]
pub fn e4_rule_13_6() -> Experiment {
    let clean = assemble(
        "main: li r1, 16\nloop: addi r2, r2, 1\n subi r1, r1, 2\n bne r1, r0, loop\n halt",
    )
    .expect("assembles");
    let dirty = assemble(
        "main: li r1, 16\nloop: subi r1, r1, 1\n subi r1, r1, 1\n bne r1, r0, loop\n halt",
    )
    .expect("assembles");

    let mut rows = Vec::new();
    let ok = WcetAnalyzer::new()
        .analyze(&clean)
        .expect("clean counter analyzes");
    rows.push(row("single-update counter: WCET (cycles)", ok.wcet_cycles));
    let err = WcetAnalyzer::new().analyze(&dirty).unwrap_err();
    rows.push(row("double-update counter: analysis result", &err));
    let header = dirty.symbol("loop").expect("label");
    let annots = AnnotationSet::parse(&format!("loop {header} bound 8;")).expect("parses");
    let fixed = analyze_with(&dirty, &annots, MachineConfig::simple()).expect("annotated");
    rows.push(row(
        "double-update + annotation: WCET (cycles)",
        fixed.wcet_cycles,
    ));
    Experiment {
        id: "E4",
        title: "complex counter updates defeat loop analysis",
        paper_ref: "Section 4.2, rule 13.6",
        rows,
    }
}

// ---------------------------------------------------------------------
// E5: rule 14.1 — unreachable code and spurious paths
// ---------------------------------------------------------------------

/// E5: rule 14.1 — code that is dead by design (a diagnostic arm guarded
/// by a flag that is always zero in production) stays on the analyzed
/// worst-case path until an exclusion annotation removes it; physically
/// dead code is reported by the checker.
#[must_use]
pub fn e5_rule_14_1() -> Experiment {
    // The diagnostic arm is feasible for the analysis (flag read from
    // MMIO) but never executes in production — the paper's
    // "over-approximation of the possible control-flow".
    let image = assemble(
        r#"
        main: li   r1, 0xf0000000
              lw   r2, 0(r1)         # diagnostic flag, always 0 in the field
              beq  r2, r0, work
        diag: li   r3, 40
        dloop: mul r4, r3, r3
              subi r3, r3, 1
              bne  r3, r0, dloop
        work: li   r3, 4
        wloop: addi r4, r4, 1
              subi r3, r3, 1
              bne  r3, r0, wloop
              halt
              nop                    # physically dead padding
              nop
        "#,
    )
    .expect("assembles");

    let mut rows = Vec::new();
    let plain = WcetAnalyzer::new().analyze(&image).expect("analyzes");
    rows.push(row(
        "WCET with spurious diagnostic path (cycles)",
        plain.wcet_cycles,
    ));
    let findings = plain.guidelines.as_ref().expect("checking enabled");
    let dead = findings
        .findings()
        .iter()
        .filter(|f| f.rule == RuleId::Misra14_1)
        .count();
    rows.push(row("rule 14.1 findings (dead ranges)", dead));

    let diag = image.symbol("diag").expect("label");
    let annots = AnnotationSet::parse(&format!("exclude {diag};")).expect("parses");
    let cleaned = analyze_with(&image, &annots, MachineConfig::simple()).expect("analyzes");
    rows.push(row(
        "WCET with diagnostic path excluded (cycles)",
        cleaned.wcet_cycles,
    ));
    rows.push(row(
        "over-estimation removed",
        format!(
            "{:.1} %",
            100.0 * (plain.wcet_cycles - cleaned.wcet_cycles) as f64 / plain.wcet_cycles as f64
        ),
    ));
    Experiment {
        id: "E5",
        title: "unreachable code inflates the worst-case path",
        paper_ref: "Section 4.2, rule 14.1",
        rows,
    }
}

// ---------------------------------------------------------------------
// E6: rule 14.4 — goto, irreducible loops, virtual unrolling
// ---------------------------------------------------------------------

/// E6: rule 14.4 — a goto-induced irreducible loop cannot be bounded or
/// virtually unrolled; the reducible restructuring is analyzed
/// automatically, and peeling its first iteration tightens the
/// instruction-cache classification.
#[must_use]
pub fn e6_rule_14_4() -> Experiment {
    let irreducible = assemble(
        r#"
        main: li r2, 20
              beq r1, r0, b
        a:    subi r2, r2, 1
              j b
        b:    subi r2, r2, 1
              bne r2, r0, a
              halt
        "#,
    )
    .expect("assembles");
    let reducible = assemble(
        // Same work, single entry. Padding puts the loop body in its own
        // icache line, so the peel experiment below isolates the cold miss.
        ".org 0x100000\nmain: li r2, 20\n nop\n nop\n nop\nhead: subi r2, r2, 1\n bne r2, r0, head\n halt",
    )
    .expect("assembles");

    let mut rows = Vec::new();
    let err = WcetAnalyzer::new().analyze(&irreducible).unwrap_err();
    rows.push(row("irreducible (goto) version: analysis result", &err));
    let ok = WcetAnalyzer::new()
        .analyze(&reducible)
        .expect("reducible analyzes");
    rows.push(row("reducible version: WCET (cycles)", ok.wcet_cycles));

    // Virtual unrolling on the reducible version under an icache: the
    // peeled first iteration absorbs the cold misses.
    let machine = MachineConfig::with_caches();
    let p = reconstruct(&reducible, &TargetResolver::empty()).expect("reconstructs");
    let fa = analyze_function(&p, p.entry, &reducible);
    let times = BlockTimes::compute(&fa, &machine);
    let plain = ipet::wcet(
        fa.cfg(),
        fa.forest(),
        &times,
        &fa.loop_bounds(),
        &[],
        &Default::default(),
    )
    .expect("plain wcet");

    let (peeled_cfg, skipped) = wcet_cfg::unroll::peel_all(fa.cfg(), fa.forest());
    assert!(skipped.is_empty());
    let summaries = wcet_analysis::valueanalysis::compute_summaries(&p);
    let fa_peeled = wcet_analysis::valueanalysis::analyze_cfg(
        peeled_cfg,
        p.entry,
        wcet_analysis::state::AbstractState::all_unknown(),
        wcet_analysis::valueanalysis::AnalysisConfig::default(),
        summaries.into(),
    );
    let times_peeled = BlockTimes::compute(&fa_peeled, &machine);
    let peeled = ipet::wcet(
        fa_peeled.cfg(),
        fa_peeled.forest(),
        &times_peeled,
        &fa_peeled.loop_bounds(),
        &[],
        &Default::default(),
    )
    .expect("peeled wcet");
    rows.push(row(
        "reducible, icache, no unrolling: WCET (cycles)",
        plain.wcet_cycles,
    ));
    rows.push(row(
        "reducible, icache, first iteration peeled: WCET (cycles)",
        peeled.wcet_cycles,
    ));
    rows.push(row(
        "virtual unrolling gain (inapplicable to irreducible loops)",
        format!(
            "{:.1} %",
            100.0 * (plain.wcet_cycles.saturating_sub(peeled.wcet_cycles)) as f64
                / plain.wcet_cycles as f64
        ),
    ));
    Experiment {
        id: "E6",
        title: "goto-induced irreducible loops and virtual unrolling",
        paper_ref: "Section 4.2, rule 14.4 / Section 3.2",
        rows,
    }
}

// ---------------------------------------------------------------------
// E7: rule 16.2 — recursion
// ---------------------------------------------------------------------

/// E7: rule 16.2 — a recursive accumulation is rejected (call-graph
/// cycle); the iterative equivalent is analyzed automatically.
#[must_use]
pub fn e7_rule_16_2() -> Experiment {
    let recursive = assemble(
        r#"
        main: li r1, 12
              call sum
              halt
        sum:  beq r1, r0, base
              subi sp, sp, 4
              sw   lr, 0(sp)
              addi r2, r2, 5
              subi r1, r1, 1
              call sum
              lw   lr, 0(sp)
              addi sp, sp, 4
        base: ret
        "#,
    )
    .expect("assembles");
    let iterative = assemble(
        r#"
        main: li r1, 12
        loop: beq r1, r0, done
              addi r2, r2, 5
              subi r1, r1, 1
              j loop
        done: halt
        "#,
    )
    .expect("assembles");

    let mut rows = Vec::new();
    let err = WcetAnalyzer::new().analyze(&recursive).unwrap_err();
    rows.push(row("recursive version: analysis result", &err));
    let ok = WcetAnalyzer::new()
        .analyze(&iterative)
        .expect("iterative analyzes");
    rows.push(row("iterative version: WCET (cycles)", ok.wcet_cycles));
    let observed = observed_cycles(&iterative, MachineConfig::simple(), |_| {});
    rows.push(row("iterative version: observed (cycles)", observed));

    // The design-level remedy the paper names for recursion: a depth
    // annotation ("such knowledge is required for recursions", §3.2).
    // r1 = 12 → 13 activations of `sum`.
    let sum = recursive.symbol("sum").expect("sum label");
    let annots = AnnotationSet::parse(&format!("recursion {sum} depth 13;")).expect("parses");
    let fixed = analyze_with(&recursive, &annots, MachineConfig::simple())
        .expect("annotated recursion analyzes");
    rows.push(row(
        "recursive + depth-13 annotation: WCET (cycles)",
        fixed.wcet_cycles,
    ));
    let observed_rec = observed_cycles(&recursive, MachineConfig::simple(), |_| {});
    rows.push(row("recursive version: observed (cycles)", observed_rec));
    rows.push(row(
        "annotated recursion sound",
        (fixed.wcet_cycles >= observed_rec).to_string(),
    ));
    Experiment {
        id: "E7",
        title: "recursion blocks bottom-up WCET composition",
        paper_ref: "Section 4.2, rule 16.2",
        rows,
    }
}

// ---------------------------------------------------------------------
// E8: rule 20.4 — dynamic allocation vs the data cache
// ---------------------------------------------------------------------

/// E8: rule 20.4 — the same double-pass buffer kernel over a statically
/// placed buffer vs a heap-allocated one: the statically known addresses
/// make every second-pass access a guaranteed cache hit, while the
/// unknown allocation address destroys the abstract data cache and turns
/// them all unclassified, inflating the WCET bound.
#[must_use]
pub fn e8_rule_20_4() -> Experiment {
    let static_buf = assemble(
        r#"
        main: li   r1, 0x8000        # static buffer: addresses known
              sw   r2, 0(r1)
              sw   r2, 4(r1)
              sw   r2, 8(r1)
              sw   r2, 12(r1)
              lw   r3, 0(r1)         # second pass: guaranteed hits
              lw   r4, 4(r1)
              lw   r5, 8(r1)
              lw   r6, 12(r1)
              add  r7, r3, r4
              halt
        "#,
    )
    .expect("assembles");
    let heap_buf = assemble(
        r#"
        main: li   r5, 32
              alloc r1, r5           # heap buffer: address unknown
              sw   r2, 0(r1)
              sw   r2, 4(r1)
              sw   r2, 8(r1)
              sw   r2, 12(r1)
              lw   r3, 0(r1)         # second pass: no guarantees left
              lw   r4, 4(r1)
              lw   r5, 8(r1)
              lw   r6, 12(r1)
              add  r7, r3, r4
              halt
        "#,
    )
    .expect("assembles");

    let machine = MachineConfig::with_caches();
    let mut rows = Vec::new();
    for (name, image) in [
        ("static buffer", &static_buf),
        ("heap buffer (alloc)", &heap_buf),
    ] {
        let report = analyze_with(image, &AnnotationSet::new(), machine.clone()).expect("analyzes");
        let findings = report.guidelines.as_ref().expect("on");
        let allocs = findings
            .findings()
            .iter()
            .filter(|f| f.rule == RuleId::Misra20_4)
            .count();
        rows.push(row(format!("{name}: WCET (cycles)"), report.wcet_cycles));
        rows.push(row(format!("{name}: rule 20.4 findings"), allocs));
    }
    // Data-cache classification comparison.
    for (name, image) in [("static", &static_buf), ("heap", &heap_buf)] {
        let p = reconstruct(image, &TargetResolver::empty()).expect("reconstructs");
        let fa = analyze_function(&p, p.entry, image);
        let dc = CacheAnalysis::data(
            fa.cfg(),
            machine.dcache.as_ref().expect("dcache"),
            &machine.memmap,
            &fa.access_values(),
        );
        let (hit, miss, nc) = dc.summary();
        rows.push(row(
            format!("{name}: dcache AH/AM/NC"),
            format!("{hit}/{miss}/{nc}"),
        ));
    }
    Experiment {
        id: "E8",
        title: "dynamic allocation destroys abstract-cache knowledge",
        paper_ref: "Section 4.2, rule 20.4",
        rows,
    }
}

// ---------------------------------------------------------------------
// E9: operating modes
// ---------------------------------------------------------------------

/// E9: operating modes — per-mode WCET bounds of the flight-control task
/// vs the global bound.
#[must_use]
pub fn e9_modes() -> Experiment {
    let w = workload::flight_control();
    let report = analyze_with(&w.image, &w.annotations, MachineConfig::simple())
        .expect("flight control analyzes");
    let global = report.mode_wcet[&None];
    let ground = report.mode_wcet[&Some("ground".to_owned())];
    let air = report.mode_wcet[&Some("air".to_owned())];
    let observed_ground = observed_cycles(&w.image, MachineConfig::simple(), |i| {
        i.poke_word(Addr(0xf000_0000), 0);
    });
    let observed_air = observed_cycles(&w.image, MachineConfig::simple(), |i| {
        i.poke_word(Addr(0xf000_0000), 1);
    });
    let rows = vec![
        row("global WCET (mode-oblivious, cycles)", global),
        row("air-mode WCET (cycles)", air),
        row("ground-mode WCET (cycles)", ground),
        row("observed, air input (cycles)", observed_air),
        row("observed, ground input (cycles)", observed_ground),
        row(
            "ground-mode tightening vs global",
            format!("{:.1}×", global as f64 / ground as f64),
        ),
    ];
    Experiment {
        id: "E9",
        title: "mode-specific analysis tightens WCET bounds",
        paper_ref: "Section 4.3, operating modes",
        rows,
    }
}

// ---------------------------------------------------------------------
// E10: data-dependent message handler
// ---------------------------------------------------------------------

/// E10: the message handler — unanalyzable without design knowledge,
/// bounded with buffer sizes, tightened further with the rx/tx mutual
/// exclusion.
#[must_use]
pub fn e10_messages() -> Experiment {
    let w = workload::message_handler(16);
    let mut rows = Vec::new();
    let bare = WcetAnalyzer::new().analyze(&w.image);
    rows.push(row(
        "no annotations: analysis result",
        bare.err()
            .map_or("unexpected success".to_owned(), |e| e.to_string()),
    ));

    // Bounds only (strip the mutex): rebuild annotations with loops only.
    let rx = w.image.symbol("rx_loop").expect("rx");
    let tx = w.image.symbol("tx_loop").expect("tx");
    let bounds_only =
        AnnotationSet::parse(&format!("loop {rx} bound 16;\nloop {tx} bound 16;")).expect("parses");
    let with_bounds = analyze_with(&w.image, &bounds_only, MachineConfig::simple())
        .expect("bounded handler analyzes");
    rows.push(row(
        "buffer-size annotations only: WCET (cycles)",
        with_bounds.wcet_cycles,
    ));

    let full = analyze_with(&w.image, &w.annotations, MachineConfig::simple())
        .expect("full annotations analyze");
    rows.push(row(
        "+ rx/tx mutual exclusion: WCET (cycles)",
        full.wcet_cycles,
    ));
    rows.push(row(
        "tightening from the exclusion",
        format!(
            "{:.1} %",
            100.0 * (with_bounds.wcet_cycles - full.wcet_cycles) as f64
                / with_bounds.wcet_cycles as f64
        ),
    ));
    // Soundness: a worst-case consistent run (rx pending, full buffer).
    let observed = observed_cycles(&w.image, MachineConfig::simple(), |i| {
        i.poke_word(Addr(0xf000_0000), 1); // rx pending
        i.poke_word(Addr(0xf000_0004), 0); // tx idle
        i.poke_word(Addr(0xf000_0008), 16); // full buffer
    });
    rows.push(row("observed (rx, full buffer, cycles)", observed));
    Experiment {
        id: "E10",
        title: "message handler: device-supplied lengths and path exclusion",
        paper_ref: "Section 4.3, data-dependent algorithms",
        rows,
    }
}

// ---------------------------------------------------------------------
// E11: imprecise memory accesses
// ---------------------------------------------------------------------

/// E11: the driver with a pointer-indirect access — charged the slowest
/// module without knowledge, tightened by the memory-region annotation.
#[must_use]
pub fn e11_memory() -> Experiment {
    let (w, annots) = workload::driver_imprecise_access();
    let machine = MachineConfig::simple();
    let plain =
        analyze_with(&w.image, &AnnotationSet::new(), machine.clone()).expect("driver analyzes");
    let tightened = analyze_with(&w.image, &annots, machine).expect("annotated driver analyzes");
    let rows = vec![
        row("unknown access: WCET (cycles)", plain.wcet_cycles),
        row(
            "with SRAM region annotation: WCET (cycles)",
            tightened.wcet_cycles,
        ),
        row(
            "slowest-module charge removed",
            format!("{}", plain.wcet_cycles - tightened.wcet_cycles),
        ),
    ];
    Experiment {
        id: "E11",
        title: "imprecise memory accesses charged at the slowest module",
        paper_ref: "Section 4.3, imprecise memory accesses",
        rows,
    }
}

// ---------------------------------------------------------------------
// E12: error handling
// ---------------------------------------------------------------------

/// E12: the error-handling task — all-errors-at-once vs error paths
/// excluded vs a shared error budget of `k`.
#[must_use]
pub fn e12_errors(n_checks: u32, k: u64) -> Experiment {
    let w = workload::error_handling(n_checks);
    let (exclude, budget) = workload::error_annotations(&w, n_checks, k);
    let machine = MachineConfig::simple();
    let all = analyze_with(&w.image, &AnnotationSet::new(), machine.clone()).expect("analyzes");
    let none = analyze_with(&w.image, &exclude, machine.clone()).expect("analyzes");
    let some = analyze_with(&w.image, &budget, machine).expect("analyzes");
    let rows = vec![
        row(
            format!("all {n_checks} errors possible at once: WCET (cycles)"),
            all.wcet_cycles,
        ),
        row("error paths excluded: WCET (cycles)", none.wcet_cycles),
        row(
            format!("error budget ≤ {k} per activation: WCET (cycles)"),
            some.wcet_cycles,
        ),
        row(
            "budget bound between the extremes",
            (none.wcet_cycles <= some.wcet_cycles && some.wcet_cycles <= all.wcet_cycles)
                .to_string(),
        ),
    ];
    Experiment {
        id: "E12",
        title: "error-handling scenarios as flow facts",
        paper_ref: "Section 4.3, error handling",
        rows,
    }
}

// ---------------------------------------------------------------------
// E13: single-path transformation
// ---------------------------------------------------------------------

/// E13: the single-path transformation — predictability (zero jitter)
/// bought at the price of a worse worst case, the paper's Section 2
/// critique of Puschner/Kirner.
#[must_use]
pub fn e13_single_path() -> Experiment {
    let (branchy, single) = workload::single_path_pair();
    let machine = MachineConfig::simple();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for w in [&branchy, &single] {
        let report =
            analyze_with(&w.image, &AnnotationSet::new(), machine.clone()).expect("analyzes");
        rows.push(row(
            format!("{}: WCET / BCET (cycles)", w.name),
            format!("{} / {}", report.wcet_cycles, report.bcet_cycles),
        ));
        rows.push(row(
            format!("{}: jitter (WCET − BCET)", w.name),
            report.wcet_cycles - report.bcet_cycles,
        ));
        results.push((report.wcet_cycles, report.bcet_cycles));
    }
    rows.push(row(
        "single-path worst case vs branchy worst case",
        format!(
            "{:+} cycles ({})",
            results[1].0 as i64 - results[0].0 as i64,
            if results[1].0 >= results[0].0 {
                "single-path impairs the worst case, as the paper argues"
            } else {
                "unexpected"
            }
        ),
    ));
    Experiment {
        id: "E13",
        title: "single-path code: zero jitter, worse worst case",
        paper_ref: "Section 2 (Puschner/Kirner critique)",
        rows,
    }
}

// ---------------------------------------------------------------------
// E14: software arithmetic kernels under the analyzer
// ---------------------------------------------------------------------

/// E14: the division kernels under the static analyzer — `ldivmod`'s
/// correction loop is unbounded (needs the domain-derived annotation),
/// restoring division is bounded automatically; the price of the
/// average-case optimization is a WCET bound far above typical runs.
#[must_use]
pub fn e14_arithmetic() -> Experiment {
    let machine = MachineConfig::simple();
    let mut rows = Vec::new();

    let rest = restoring_kernel();
    let report = analyze_with(&rest.image, &AnnotationSet::new(), machine.clone())
        .expect("restoring kernel analyzes");
    rows.push(row(
        "restoring division: WCET (cycles, automatic)",
        report.wcet_cycles,
    ));
    let observed = {
        let mut i = Interpreter::with_config(&rest.image, machine.clone());
        i.set_reg(rest.n_reg, 0xffff_ffff);
        i.set_reg(rest.d_reg, 3);
        i.run(100_000).expect("halts").cycles
    };
    rows.push(row("restoring division: observed (cycles)", observed));

    let ldiv = ldivmod_kernel();
    let err = WcetAnalyzer::new().analyze(&ldiv.image).unwrap_err();
    rows.push(row("ldivmod: analysis without annotation", &err));

    // Design knowledge: divisors are at least 2^20 (the message-period
    // divider of the application), so the correction loop is bounded.
    let d_min = 0x0010_0000u32;
    let bound = correction_bound(d_min);
    let corr = ldiv.correction_loop.expect("correction loop labeled");
    let annots =
        AnnotationSet::parse(&format!("loop {corr} bound {};", bound + 1)).expect("parses");
    let fixed =
        analyze_with(&ldiv.image, &annots, machine.clone()).expect("annotated ldivmod analyzes");
    rows.push(row(
        format!("ldivmod + domain annotation (d ≥ 0x{d_min:x}, bound {bound}): WCET (cycles)"),
        fixed.wcet_cycles,
    ));
    let typical = {
        let mut i = Interpreter::with_config(&ldiv.image, machine);
        i.set_reg(ldiv.n_reg, 0xffd9_3580);
        i.set_reg(ldiv.d_reg, 0x0107_d228);
        i.run(1_000_000).expect("halts").cycles
    };
    rows.push(row(
        "ldivmod: observed on a typical input (cycles)",
        typical,
    ));
    rows.push(row(
        "ldivmod over-estimation vs typical (the paper's 'big over-estimation')",
        format!("{:.1}×", fixed.wcet_cycles as f64 / typical as f64),
    ));
    Experiment {
        id: "E14",
        title: "software arithmetic under static WCET analysis",
        paper_ref: "Section 4.3, software arithmetic / Table 1",
        rows,
    }
}

// ---------------------------------------------------------------------
// E15: function pointers
// ---------------------------------------------------------------------

/// E15: function-pointer dispatch — unresolved without help; resolved by
/// the value analysis through the jump table; resolvable by annotation
/// when the table is not statically visible.
#[must_use]
pub fn e15_function_pointers() -> Experiment {
    let w = workload::state_machine(4);
    let mut rows = Vec::new();
    let report = WcetAnalyzer::new()
        .analyze(&w.image)
        .expect("resolves and analyzes");
    rows.push(row(
        "unresolved call sites before value analysis",
        report.trace.unresolved_initial,
    ));
    rows.push(row(
        "unresolved call sites after table resolution",
        report.trace.unresolved_final,
    ));
    rows.push(row("resolution rounds", report.trace.resolve_rounds));
    rows.push(row("functions discovered", report.functions.len()));
    rows.push(row("task WCET (cycles)", report.wcet_cycles));

    // The same binary with the table wiped (e.g. filled by startup code):
    // only an annotation can resolve the call.
    let mut opaque = w.image.clone();
    opaque.data.clear();
    let err = WcetAnalyzer::new().analyze(&opaque).unwrap_err();
    rows.push(row("opaque table: analysis result", &err));
    let callr_site = opaque
        .decode_code()
        .expect("decodes")
        .iter()
        .find(|(_, i)| matches!(i, wcet_isa::Inst::CallInd { .. }))
        .map(|(a, _)| *a)
        .expect("callr present");
    let handlers: Vec<String> = (0..4)
        .map(|s| {
            opaque
                .symbol(&format!("handler{s}"))
                .expect("handler")
                .to_string()
        })
        .collect();
    let annots = AnnotationSet::parse(&format!(
        "call {callr_site} targets {};",
        handlers.join(", ")
    ))
    .expect("parses");
    let fixed = analyze_with(&opaque, &annots, MachineConfig::simple())
        .expect("annotated opaque table analyzes");
    rows.push(row(
        "opaque table + target annotation: WCET (cycles)",
        fixed.wcet_cycles,
    ));
    Experiment {
        id: "E15",
        title: "function-pointer resolution",
        paper_ref: "Section 3.2, function pointers",
        rows,
    }
}

// ---------------------------------------------------------------------
// E16: instruction-cache predictability and code layout
// ---------------------------------------------------------------------

/// E16: code layout vs the instruction cache — the COLA "cache killer":
/// two phase bodies mapping to the same direct-mapped sets evict each
/// other every iteration; the friendly layout keeps both resident.
#[must_use]
pub fn e16_cache_layout() -> Experiment {
    let (killer, friendly) = workload::cache_pair();
    // Direct-mapped icache makes the conflict visible.
    let machine = MachineConfig {
        icache: Some(CacheConfig::new(16, 1, 16, 1)),
        ..MachineConfig::simple()
    };
    let mut rows = Vec::new();
    for w in [&killer, &friendly] {
        let report =
            analyze_with(&w.image, &AnnotationSet::new(), machine.clone()).expect("analyzes");
        let p = reconstruct(&w.image, &TargetResolver::empty()).expect("reconstructs");
        let fa = analyze_function(&p, p.entry, &w.image);
        let ic = CacheAnalysis::instruction(
            fa.cfg(),
            machine.icache.as_ref().expect("icache"),
            &machine.memmap,
        );
        let (hit, miss, nc) = ic.summary();
        let observed = observed_cycles(&w.image, machine.clone(), |_| {});
        rows.push(row(
            format!("{}: WCET / observed (cycles)", w.name),
            format!("{} / {observed}", report.wcet_cycles),
        ));
        rows.push(row(
            format!("{}: icache AH/AM/NC", w.name),
            format!("{hit}/{miss}/{nc}"),
        ));
    }
    Experiment {
        id: "E16",
        title: "code layout: cache killers vs cache-aware placement",
        paper_ref: "Section 2 (COLA/PEAL cache killers)",
        rows,
    }
}

// ---------------------------------------------------------------------
// Ablation: which analyzer ingredient buys what
// ---------------------------------------------------------------------

/// Ablation study over the analyzer's main design choices, on the
/// annotated message-handler task: how much WCET precision does each
/// ingredient buy (cache analysis, virtual unrolling, each annotation
/// class)? Rows report the WCET bound per configuration.
#[must_use]
pub fn ablation() -> Experiment {
    let mut rows = Vec::new();

    // --- Axis 1: machine model and unrolling on a cached loop task ----
    let loop_task = assemble(
        ".org 0x100000\nmain: li r1, 24\n nop\n nop\n nop\nloop: mul r2, r2, r2\n subi r1, r1, 1\n bne r1, r0, loop\n halt",
    )
    .expect("assembles");
    for (label, machine, unrolling) in [
        ("no caches", MachineConfig::simple(), false),
        (
            "icache+dcache, no unrolling",
            MachineConfig::with_caches(),
            false,
        ),
        (
            "icache+dcache + virtual unrolling",
            MachineConfig::with_caches(),
            true,
        ),
    ] {
        let config = AnalyzerConfig {
            machine,
            unrolling,
            ..AnalyzerConfig::new()
        };
        let report = WcetAnalyzer::with_config(config)
            .analyze(&loop_task)
            .expect("analyzes");
        rows.push(row(
            format!("flash loop task | {label}: WCET (cycles)"),
            report.wcet_cycles,
        ));
    }

    // --- Axis 2: annotation classes on the message handler ------------
    let w = workload::message_handler(16);
    let rx = w.image.symbol("rx_loop").expect("rx");
    let tx = w.image.symbol("tx_loop").expect("tx");
    let rx_head = w.image.symbol("rx_head").expect("rx_head");
    let tx_head = w.image.symbol("tx_head").expect("tx_head");
    let variants: Vec<(&str, String)> = vec![
        (
            "loop bounds only",
            format!("loop {rx} bound 16;\nloop {tx} bound 16;"),
        ),
        (
            "loop bounds + mutex",
            format!(
                "loop {rx} bound 16;\nloop {tx} bound 16;\nmutex {rx_head}, {tx_head} capacity 1;"
            ),
        ),
        (
            "tighter design bound (8 words)",
            format!(
                "loop {rx} bound 8;\nloop {tx} bound 8;\nmutex {rx_head}, {tx_head} capacity 1;"
            ),
        ),
    ];
    rows.push(row(
        "message handler | no annotations",
        if WcetAnalyzer::new().analyze(&w.image).is_err() {
            "rejected (unbounded device loops)"
        } else {
            "unexpected success"
        },
    ));
    for (label, text) in variants {
        let annots = AnnotationSet::parse(&text).expect("parses");
        let report = analyze_with(&w.image, &annots, MachineConfig::simple()).expect("analyzes");
        rows.push(row(
            format!("message handler | {label}: WCET (cycles)"),
            report.wcet_cycles,
        ));
    }

    // --- Axis 3: value-domain power: jump-table resolution ------------
    let sm = workload::state_machine(4);
    let resolved = WcetAnalyzer::new().analyze(&sm.image).expect("resolves");
    rows.push(row(
        "state machine | set-enumeration resolution: WCET (cycles)",
        resolved.wcet_cycles,
    ));
    rows.push(row(
        "state machine | resolution rounds needed",
        resolved.trace.resolve_rounds,
    ));

    Experiment {
        id: "A1",
        title: "ablation: what each analyzer ingredient buys",
        paper_ref: "DESIGN.md design choices",
        rows,
    }
}

/// Runs every experiment (with a modest E1 sample count) — the harness
/// behind `cargo bench` summaries and EXPERIMENTS.md.
#[must_use]
pub fn run_all(table1_samples: u64) -> Vec<Experiment> {
    vec![
        e1_table1(table1_samples),
        e2_pipeline(),
        e3_rule_13_4(),
        e4_rule_13_6(),
        e5_rule_14_1(),
        e6_rule_14_4(),
        e7_rule_16_2(),
        e8_rule_20_4(),
        e9_modes(),
        e10_messages(),
        e11_memory(),
        e12_errors(6, 1),
        e13_single_path(),
        e14_arithmetic(),
        e15_function_pointers(),
        e16_cache_layout(),
        ablation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape() {
        let e = e1_table1(50_000);
        assert_eq!(e.id, "E1");
        assert!(e.rows.iter().any(|(l, _)| l.contains("one-iteration")));
    }

    #[test]
    fn e3_to_e5_run() {
        for e in [e3_rule_13_4(), e4_rule_13_6(), e5_rule_14_1()] {
            assert!(!e.rows.is_empty(), "{} empty", e.id);
        }
    }

    #[test]
    fn e5_exclusion_tightens() {
        let e = e5_rule_14_1();
        let wcet_of = |needle: &str| -> u64 {
            e.rows
                .iter()
                .find(|(l, _)| l.contains(needle))
                .map(|(_, v)| v.parse().expect("numeric"))
                .expect("row present")
        };
        assert!(wcet_of("excluded") < wcet_of("spurious"));
    }

    #[test]
    fn e6_unrolling_tightens() {
        let e = e6_rule_14_4();
        let peeled: u64 = e
            .rows
            .iter()
            .find(|(l, _)| l.contains("peeled"))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        let plain: u64 = e
            .rows
            .iter()
            .find(|(l, _)| l.contains("no unrolling"))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        assert!(peeled <= plain);
    }

    #[test]
    fn e9_modes_ordered() {
        let e = e9_modes();
        let val = |needle: &str| -> u64 {
            e.rows
                .iter()
                .find(|(l, _)| l.contains(needle))
                .and_then(|(_, v)| v.parse().ok())
                .expect("numeric row")
        };
        assert!(val("ground-mode WCET") < val("global WCET"));
        assert!(val("observed, ground") <= val("ground-mode WCET"));
        assert!(val("observed, air") <= val("air-mode WCET"));
    }

    #[test]
    fn e12_budget_between_extremes() {
        let e = e12_errors(4, 1);
        assert!(e.rows.iter().any(|(_, v)| v == "true"));
    }

    #[test]
    fn e13_single_path_tradeoff() {
        let e = e13_single_path();
        let jitter = |name: &str| -> u64 {
            e.rows
                .iter()
                .find(|(l, _)| l.contains(name) && l.contains("jitter"))
                .and_then(|(_, v)| v.parse().ok())
                .expect("jitter row")
        };
        assert!(jitter("single_path") < jitter("branchy"));
        assert!(e.rows.iter().any(|(_, v)| v.contains("impairs")));
    }

    #[test]
    fn e14_and_e15_run() {
        let e14 = e14_arithmetic();
        assert!(e14.rows.iter().any(|(l, _)| l.contains("restoring")));
        let e15 = e15_function_pointers();
        assert!(e15
            .rows
            .iter()
            .any(|(l, v)| l.contains("after table resolution") && v == "0"));
    }

    #[test]
    fn ablation_orderings() {
        let e = ablation();
        let wcet_of = |needle: &str| -> u64 {
            e.rows
                .iter()
                .find(|(l, _)| l.contains(needle) && l.contains("WCET"))
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or_else(|| panic!("row {needle} missing or non-numeric"))
        };
        // Unrolling never worsens the cached bound.
        assert!(
            wcet_of("virtual unrolling") <= wcet_of("no unrolling"),
            "unrolling must not hurt"
        );
        // Each added annotation class tightens the handler.
        assert!(wcet_of("+ mutex") < wcet_of("loop bounds only"));
        assert!(wcet_of("tighter design bound") < wcet_of("+ mutex"));
    }

    #[test]
    fn e16_killer_slower() {
        let e = e16_cache_layout();
        let wcet = |name: &str| -> u64 {
            e.rows
                .iter()
                .find(|(l, _)| l.contains(name) && l.contains("WCET"))
                .map(|(_, v)| v.split('/').next().unwrap().trim().parse().unwrap())
                .unwrap()
        };
        assert!(wcet("cache_killer") > wcet("cache_friendly"));
    }
}
