//! The scoped worker pool behind the analyzer's per-function fan-out.
//!
//! Every per-function phase (value analysis, cache/pipeline analysis,
//! virtual unrolling, IPET) is a map over independent work items. This
//! module runs such maps on a pool of scoped `std::thread` workers pulling
//! items off a shared atomic cursor, and returns the results **in input
//! order** — callers merge into `BTreeMap`s, so a parallel run is
//! bit-identical to a sequential one. Alongside the results it reports the
//! summed per-item work time, which [`crate::phases::PhaseTrace`] records
//! next to the wall-clock phase time so fan-out never under-reports work.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resolves the configured parallelism to a worker count: `Some(n)` is
/// taken literally (minimum 1), `None` means one worker per available
/// core.
#[must_use]
pub fn worker_count(parallelism: Option<usize>) -> usize {
    match parallelism {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `work` over `items` on up to `threads` workers; returns the
/// results in input order plus the summed per-item work time.
///
/// With one worker (or one item) the map runs inline on the caller's
/// thread — the sequential path and the parallel path are the same code.
///
/// # Panics
///
/// Propagates panics from `work` (a worker panic aborts the analysis).
pub fn map_in_order<T, R, F>(items: &[T], threads: usize, work: F) -> (Vec<R>, Duration)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let mut total = Duration::ZERO;
        let results = items
            .iter()
            .map(|item| {
                let t = Instant::now();
                let r = work(item);
                total += t.elapsed();
                r
            })
            .collect();
        return (results, total);
    }

    let cursor = AtomicUsize::new(0);
    let mut harvests: Vec<Vec<(usize, R, Duration)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let t = Instant::now();
                        let r = work(item);
                        local.push((i, r, t.elapsed()));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut total = Duration::ZERO;
    for (i, r, spent) in harvests.drain(..).flatten() {
        slots[i] = Some(r);
        total += spent;
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every item processed exactly once"))
        .collect();
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let (out, _) = map_in_order(&items, threads, |&i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_maps() {
        let none: Vec<u32> = Vec::new();
        let (out, work) = map_in_order(&none, 8, |&x| x);
        assert!(out.is_empty());
        assert_eq!(work, Duration::ZERO);
        let (out, _) = map_in_order(&[41u32], 8, |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn work_time_accumulates_across_workers() {
        let items: Vec<u32> = (0..16).collect();
        let (_, work) = map_in_order(&items, 4, |&x| {
            std::thread::sleep(Duration::from_millis(1));
            x
        });
        assert!(work >= Duration::from_millis(16), "summed work {work:?}");
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(worker_count(Some(3)), 3);
        assert_eq!(worker_count(Some(0)), 1);
        assert!(worker_count(None) >= 1);
    }
}
