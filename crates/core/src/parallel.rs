//! The persistent worker pool behind the analyzer's per-function fan-out.
//!
//! Every per-function phase (value analysis, cache/pipeline analysis,
//! virtual unrolling, IPET) is a map over independent work items. A
//! [`WorkerPool`] owns a fixed set of long-lived worker threads; each
//! [`WorkerPool::map_in_order`] call hands them one batch of items via a
//! shared atomic cursor and returns the results **in input order** —
//! callers merge into `BTreeMap`s, so a parallel run is bit-identical to
//! a sequential one. Alongside the results it reports the summed per-item
//! work time, which [`crate::phases::PhaseTrace`] records next to the
//! wall-clock phase time so fan-out never under-reports work.
//!
//! The pool replaced a per-phase `std::thread::scope` spawn (a DESIGN.md
//! open question): one analysis run makes half a dozen fan-outs, and a
//! long-lived `wcet serve` daemon makes half a dozen *per request* — the
//! spawn/join cost and the unbounded thread churn both matter there. The
//! calling thread always participates in the map, so a pool of size 1
//! owns no threads at all (the sequential path and the parallel path are
//! the same code), and a busy pool can never deadlock a nested or
//! concurrent map: the caller itself guarantees progress.
//!
//! # Safety
//!
//! Map closures borrow the caller's stack (`items`, the `work` closure,
//! the per-map job state). They cross into the pool's `'static` queue
//! through one lifetime-erasing transmute, which is sound because
//! `map_in_order` *blocks on a completion latch* until every enqueued
//! thunk has finished (including panicked ones — panics are caught,
//! carried back, and re-raised on the caller). No borrow outlives the
//! call.

use std::any::Any;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolves the configured parallelism to a worker count: `Some(n)` is
/// taken literally (minimum 1), `None` means one worker per available
/// core.
#[must_use]
pub fn worker_count(parallelism: Option<usize>) -> usize {
    match parallelism {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    }
}

/// A thunk in the pool's queue. Genuinely `'static` from the pool's
/// perspective; the submitting map call guarantees the erased borrows
/// stay alive by blocking until the thunk ran.
type Thunk = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signals workers: work arrived, or shutdown.
    wake: Condvar,
}

struct PoolQueue {
    thunks: VecDeque<Thunk>,
    shutdown: bool,
}

/// A persistent pool of worker threads shared by every fan-out of one
/// analysis run — or, under `wcet serve`, by every fan-out of every
/// request the daemon ever handles.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `size` workers (minimum 1). The calling thread counts
    /// as one of them: `size - 1` threads are spawned, and a pool of
    /// size 1 spawns none — every map runs inline on the caller.
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                thunks: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let workers = (1..size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let thunk = {
                        let mut q = shared.queue.lock().expect("pool queue");
                        loop {
                            if let Some(t) = q.thunks.pop_front() {
                                break t;
                            }
                            if q.shutdown {
                                return;
                            }
                            q = shared.wake.wait(q).expect("pool queue");
                        }
                    };
                    thunk();
                })
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            size,
        }
    }

    /// The worker count this pool was built with (including the calling
    /// thread's slot).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Maps `work` over `items` on the pool; returns the results in
    /// input order plus the summed per-item work time.
    ///
    /// The caller participates: with a pool of size 1 (or a single item)
    /// the whole map runs inline. Blocks until every item is done, even
    /// when the pool is busy with other maps — thunks queue and the
    /// caller drains items itself in the meantime.
    ///
    /// # Panics
    ///
    /// Propagates panics from `work` (a worker panic aborts the map; the
    /// first caught payload is re-raised after all helpers finished).
    // The single unsafe block the workspace permits: the thunk transmute
    // erases the borrow of `job` so persistent workers can run it, and
    // the unconditional latch wait below keeps the borrow alive past
    // every use. A scoped-thread rewrite would spawn per map and lose
    // the warm pool that serve mode's throughput rides on.
    #[allow(unsafe_code)]
    pub fn map_in_order<T, R, F>(&self, items: &[T], work: F) -> (Vec<R>, Duration)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // Helpers beyond the caller's own slot; never more than there
        // are items to share.
        let helpers = (self.size - 1).min(items.len().saturating_sub(1));
        if helpers == 0 {
            let mut total = Duration::ZERO;
            let results = items
                .iter()
                .map(|item| {
                    let t = Instant::now();
                    let r = work(item);
                    total += t.elapsed();
                    r
                })
                .collect();
            return (results, total);
        }

        let job: Job<'_, T, R, F> = Job {
            items,
            work,
            cursor: AtomicUsize::new(0),
            harvest: Mutex::new(Vec::with_capacity(items.len())),
            panic: Mutex::new(None),
            latch: Mutex::new(helpers),
            done: Condvar::new(),
        };

        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            for _ in 0..helpers {
                let body: Box<dyn FnOnce() + Send + '_> = Box::new(|| job.run_helper());
                // SAFETY: the latch wait below does not return until
                // every one of these thunks has run to completion, so
                // the borrows of `job` (and through it `items`/`work`)
                // outlive all uses despite the erased lifetime.
                let body: Thunk =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Thunk>(body) };
                q.thunks.push_back(body);
            }
            drop(q);
            self.shared.wake.notify_all();
        }

        // The caller drains items too — this is what makes a saturated
        // or size-1 pool deadlock-free.
        let own = catch_unwind(AssertUnwindSafe(|| job.drain()));

        // Wait for every helper, unconditionally: borrows must stay
        // alive until the last helper is done, panic or not.
        let mut pending = job.latch.lock().expect("latch");
        while *pending > 0 {
            pending = job.done.wait(pending).expect("latch");
        }
        drop(pending);

        if let Err(payload) = own {
            resume_unwind(payload);
        }
        if let Some(payload) = job.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }

        let mut harvest = job.harvest.into_inner().expect("harvest");
        harvest.sort_unstable_by_key(|&(i, _, _)| i);
        let mut total = Duration::ZERO;
        let mut results = Vec::with_capacity(items.len());
        for (i, r, spent) in harvest {
            debug_assert_eq!(i, results.len(), "every item processed exactly once");
            results.push(r);
            total += spent;
        }
        assert_eq!(results.len(), items.len(), "every item processed");
        (results, total)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // `drop` has exclusive ownership, so no map is in flight and the
        // queue is empty: workers exit as soon as they observe the flag.
        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            q.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-map shared state: the cursor the workers race on, the harvest
/// they merge into, and the completion latch the caller blocks on.
struct Job<'a, T, R, F> {
    items: &'a [T],
    work: F,
    cursor: AtomicUsize,
    harvest: Mutex<Vec<(usize, R, Duration)>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Mutex<usize>,
    done: Condvar,
}

impl<T, R, F> Job<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    /// Claims and processes items until the cursor runs out.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            let Some(item) = self.items.get(i) else { break };
            let t = Instant::now();
            let r = (self.work)(item);
            let spent = t.elapsed();
            self.harvest.lock().expect("harvest").push((i, r, spent));
        }
    }

    /// A helper thread's body: drain, catch panics, count down the
    /// latch no matter what.
    fn run_helper(&self) {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.drain()));
        if let Err(payload) = outcome {
            // Poison the cursor so siblings stop claiming new items —
            // the map is failed either way.
            self.cursor.store(usize::MAX - (1 << 20), Ordering::Relaxed);
            let mut slot = self.panic.lock().expect("panic slot");
            slot.get_or_insert(payload);
        }
        let mut pending = self.latch.lock().expect("latch");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let pool = WorkerPool::new(threads);
            let (out, _) = pool.map_in_order(&items, |&i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_is_reusable_across_maps() {
        let pool = WorkerPool::new(4);
        for round in 0..50usize {
            let items: Vec<usize> = (0..17).collect();
            let (out, _) = pool.map_in_order(&items, |&i| i + round);
            assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = WorkerPool::new(8);
        let none: Vec<u32> = Vec::new();
        let (out, work) = pool.map_in_order(&none, |&x| x);
        assert!(out.is_empty());
        assert_eq!(work, Duration::ZERO);
        let (out, _) = pool.map_in_order(&[41u32], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn work_time_accumulates_across_workers() {
        let pool = WorkerPool::new(4);
        let items: Vec<u32> = (0..16).collect();
        let (_, work) = pool.map_in_order(&items, |&x| {
            std::thread::sleep(Duration::from_millis(1));
            x
        });
        assert!(work >= Duration::from_millis(16), "summed work {work:?}");
    }

    #[test]
    fn concurrent_maps_share_one_pool() {
        // The serve daemon's shape: several request threads mapping over
        // one shared pool at once. Every map must complete with its own
        // results, in order.
        let pool = Arc::new(WorkerPool::new(3));
        let handles: Vec<_> = (0..4u64)
            .map(|salt| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let items: Vec<u64> = (0..64).collect();
                    let (out, _) = pool.map_in_order(&items, |&i| i * 2 + salt);
                    assert_eq!(out, (0..64).map(|i| i * 2 + salt).collect::<Vec<_>>());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("map thread");
        }
    }

    #[test]
    fn worker_panics_propagate_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..32).collect();
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.map_in_order(&items, |&i| {
                assert!(i != 9, "injected failure");
                i
            })
        }));
        assert!(boom.is_err(), "panic must propagate to the caller");
        // The pool is still serviceable afterwards.
        let (out, _) = pool.map_in_order(&items, |&i| i + 1);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(worker_count(Some(3)), 3);
        assert_eq!(worker_count(Some(0)), 1);
        assert!(worker_count(None) >= 1);
    }
}
