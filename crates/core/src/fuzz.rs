//! Corpus-scale differential fuzzing of the analyzer (`wcet fuzz`).
//!
//! The soundness argument of an abstract-interpretation WCET analyzer is
//! only as strong as the programs it has been confronted with. This module
//! is the automated adversary: a deterministic random-program generator
//! over [`ProgramBuilder`], a differential oracle that checks
//! interpreter-observed cycles against the analyzer's `[BCET, WCET]`
//! interval across the whole configuration matrix (context depth, caches,
//! persistence, virtual unrolling, worker threads, warm/cold artifact
//! cache), and — because the vendored proptest stand-in has no shrinking —
//! a greedy structural shrinker that reduces every failure to a minimal
//! reproducer.
//!
//! Everything is reproducible from a single `u64` seed: generation,
//! input-vector selection, and the oracle schedule derive from it through
//! the vendored deterministic `StdRng`, so a CI failure line like
//! `seed 1, program 173, isa rv32i` replays locally with
//! `wcet fuzz --seed 1 --programs 174 --isa rv32i`.
//!
//! # Program shape
//!
//! Generated programs are specified in a small structural IR ([`ProgSpec`])
//! and lowered per-ISA, which keeps shrinking semantic (drop a function,
//! halve a loop bound, delete a statement) instead of textual:
//!
//! * an acyclic call tree up to depth 4 (`f0` = entry, calls only go to
//!   deeper levels); callees save/restore `lr` and the loop-counter
//!   registers on the stack,
//! * counted loops (nesting ≤ 2) in the exact `li/sub/bne` shape the
//!   automatic loop-bound analysis recognizes; loops whose body performs a
//!   call hide the counter from that analysis, so those always carry an
//!   auto-emitted `loop <header> bound N;` annotation matching the real
//!   trip count (others are annotated at random — both derivation paths
//!   stay under test),
//! * a 16-word SRAM data array with constant-slot and counter-indexed
//!   loads/stores,
//! * branches over the externally-set input registers `r10..r12`,
//! * straight-line ALU traffic drawn from the op set both backends encode
//!   (`AluImm` restricted to the RV32I immediate forms; `li` defers to the
//!   per-ISA constant synthesis).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcet_guidelines::annot::AnnotationSet;
use wcet_isa::builder::ProgramBuilder;
use wcet_isa::interp::{Interpreter, MachineConfig};
use wcet_isa::{AluOp, Cond, Image, IsaKind, Reg};

use crate::analyzer::{AnalysisReport, AnalyzerConfig, WcetAnalyzer};
use crate::incr::ArtifactCache;

/// Base address of the shared data array (SRAM).
const DATA_BASE: u32 = 0x8000;
/// Number of words in the shared data array; indexed accesses mask to it.
const DATA_SLOTS: u32 = 16;
/// Maximum loop-nesting depth (one dedicated counter register per level).
const MAX_LOOP_DEPTH: u8 = 2;
/// Scratch registers the generator computes into (`r1..r6`).
const NUM_SCRATCH: u8 = 6;
/// Externally-set input registers (`r10..r12`, read-only to generated code).
const NUM_INPUTS: u8 = 3;

/// Loop-counter register for nesting level `depth` (`r8`/`r9`).
fn counter_reg(depth: u8) -> Reg {
    Reg::new(8 + depth.min(MAX_LOOP_DEPTH - 1))
}

/// Scratch register `i` of [`NUM_SCRATCH`].
fn scratch_reg(i: u8) -> Reg {
    Reg::new(1 + i % NUM_SCRATCH)
}

/// Input register `i` of [`NUM_INPUTS`].
fn input_reg(i: u8) -> Reg {
    Reg::new(10 + i % NUM_INPUTS)
}

/// Address-computation temporaries (never targets of random ALU traffic).
fn addr_tmp() -> Reg {
    Reg::new(7)
}
fn addr_tmp2() -> Reg {
    Reg::new(13)
}

// ---------------------------------------------------------------------------
// Structural IR
// ---------------------------------------------------------------------------

/// One statement of the structural IR. `u8` register fields are indices
/// into the scratch/input register files (see [`scratch_reg`] and the
/// `src` helper), not raw registers, so a spec can never name a reserved
/// register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `SCRATCH[rd] = src(rs1) op src(rs2)`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// `SCRATCH[rd] = src(rs1) op imm` (RV32I-encodable forms only).
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    /// `SCRATCH[rd] = value` via the per-ISA constant synthesis.
    Li { rd: u8, value: u32 },
    /// `SCRATCH[rd] = data[slot]`.
    Load { rd: u8, slot: u8 },
    /// `data[slot] = src(rs)`.
    Store { rs: u8, slot: u8 },
    /// `SCRATCH[rd] = data[counter(depth) % DATA_SLOTS]` — a
    /// counter-indexed access; only valid inside a loop of at least
    /// `depth + 1` nesting levels.
    LoadIdx { rd: u8, depth: u8 },
    /// Two-armed branch on `src(rs1) cond src(rs2)`.
    Diamond {
        cond: Cond,
        rs1: u8,
        rs2: u8,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// Counted loop executing `body` exactly `bound` times. `annotate`
    /// requests a `loop <header> bound N;` annotation; lowering forces it
    /// on whenever the body (transitively) performs a call, which hides
    /// the counter from the automatic bound analysis.
    Loop {
        bound: u16,
        annotate: bool,
        body: Vec<Stmt>,
    },
    /// Call to function `callee` (an index into [`ProgSpec::funcs`];
    /// always a strictly deeper call-tree level, so the graph is acyclic).
    Call { callee: usize },
}

impl Stmt {
    fn contains_call(&self) -> bool {
        match self {
            Stmt::Call { .. } => true,
            Stmt::Diamond {
                then_body,
                else_body,
                ..
            } => body_contains_call(then_body) || body_contains_call(else_body),
            Stmt::Loop { body, .. } => body_contains_call(body),
            _ => false,
        }
    }
}

fn body_contains_call(body: &[Stmt]) -> bool {
    body.iter().any(Stmt::contains_call)
}

/// One generated function: a statement body. Function 0 is the entry
/// (ends in `halt`); every other function gets a `lr`/counter-saving
/// prologue and returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpec {
    /// Call-tree level: the entry is level 0; calls from level `d` only
    /// target functions at level `d + 1`.
    pub level: u8,
    pub body: Vec<Stmt>,
}

/// A complete generated program, pre-lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgSpec {
    pub isa: IsaKind,
    /// Base address of the code: SRAM or flash (flash makes the
    /// instruction cache load-bearing).
    pub code_base: u32,
    pub funcs: Vec<FuncSpec>,
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// ALU ops legal as three-register forms on both backends.
const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Mulhu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

/// ALU ops legal as immediate forms on both backends (`sub` normalizes to
/// `addi -imm` on RV32I; `mul`/`mulhu` have no immediate encoding there).
const ALUI_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sra,
    AluOp::Slt,
];

/// Constants worth multiplying/masking with: powers of two around the
/// 2³² boundary, saturating values, and a few primes.
const LI_PALETTE: [u32; 16] = [
    0,
    1,
    3,
    7,
    15,
    16,
    255,
    257,
    0x7fff,
    0x8000,
    0xffff,
    0x0001_0000,
    0x0010_0000,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

/// Derives the per-program generator seed from the campaign seed. The mix
/// is printed on failure, so one failing program replays without re-running
/// the programs before it.
#[must_use]
pub fn program_seed(campaign_seed: u64, index: u64, isa: IsaKind) -> u64 {
    let salt = match isa {
        IsaKind::House => 0x9e37_79b9_7f4a_7c15,
        IsaKind::Rv32i => 0xc2b2_ae3d_27d4_eb4f,
    };
    campaign_seed
        .wrapping_mul(0x0100_0000_01b3)
        .wrapping_add(index)
        .wrapping_mul(salt)
}

struct Gen {
    rng: StdRng,
    /// Remaining statement budget for the whole program, so deeply nested
    /// recursion cannot balloon one spec.
    budget: usize,
}

impl Gen {
    fn stmt(&mut self, loop_depth: u8, call_targets: &[usize]) -> Stmt {
        self.budget = self.budget.saturating_sub(1);
        let roll = self.rng.gen_range(0u32..100);
        match roll {
            // Straight-line ALU traffic dominates: it is where the value
            // domain (and the interval fix under test) lives.
            0..=29 => Stmt::Alu {
                op: ALU_OPS[self.rng.gen_range(0..ALU_OPS.len())],
                rd: self.rd(),
                rs1: self.rs(),
                rs2: self.rs(),
            },
            30..=44 => {
                let op = ALUI_OPS[self.rng.gen_range(0..ALUI_OPS.len())];
                let imm = match op {
                    AluOp::Shl | AluOp::Shr | AluOp::Sra => self.rng.gen_range(0..=31),
                    // House logical immediates are zero-extended; negative
                    // values have no encoding there.
                    AluOp::And | AluOp::Or | AluOp::Xor => self.rng.gen_range(0..=255),
                    _ => self.rng.gen_range(-128..=127),
                };
                Stmt::AluImm {
                    op,
                    rd: self.rd(),
                    rs1: self.rs(),
                    imm,
                }
            }
            45..=54 => Stmt::Li {
                rd: self.rd(),
                value: if self.rng.gen_bool(0.5) {
                    LI_PALETTE[self.rng.gen_range(0..LI_PALETTE.len())]
                } else {
                    self.rng.gen_range(0..=u32::MAX)
                },
            },
            55..=62 => Stmt::Load {
                rd: self.rd(),
                slot: self.rng.gen_range(0..DATA_SLOTS) as u8,
            },
            63..=70 => Stmt::Store {
                rs: self.rs(),
                slot: self.rng.gen_range(0..DATA_SLOTS) as u8,
            },
            71..=75 if loop_depth > 0 => Stmt::LoadIdx {
                rd: self.rd(),
                depth: self.rng.gen_range(0..loop_depth),
            },
            76..=85 if self.budget > 2 => {
                let then_body = self.body(1..=3, loop_depth, call_targets);
                let else_body = self.body(1..=3, loop_depth, call_targets);
                Stmt::Diamond {
                    cond: CONDS[self.rng.gen_range(0..CONDS.len())],
                    rs1: self.rs(),
                    rs2: self.rs(),
                    then_body,
                    else_body,
                }
            }
            86..=94 if loop_depth < MAX_LOOP_DEPTH && self.budget > 2 => Stmt::Loop {
                bound: self.rng.gen_range(1..=10),
                annotate: self.rng.gen_bool(0.4),
                body: self.body(1..=4, loop_depth + 1, call_targets),
            },
            _ if !call_targets.is_empty() => Stmt::Call {
                callee: call_targets[self.rng.gen_range(0..call_targets.len())],
            },
            // Fallback when the preferred construct is unavailable here.
            _ => Stmt::AluImm {
                op: AluOp::Add,
                rd: self.rd(),
                rs1: self.rs(),
                imm: self.rng.gen_range(-8..=8),
            },
        }
    }

    fn body(
        &mut self,
        count: std::ops::RangeInclusive<usize>,
        loop_depth: u8,
        call_targets: &[usize],
    ) -> Vec<Stmt> {
        let n = self.rng.gen_range(count).min(self.budget.max(1));
        (0..n)
            .map(|_| self.stmt(loop_depth, call_targets))
            .collect()
    }

    fn rd(&mut self) -> u8 {
        self.rng.gen_range(0..NUM_SCRATCH)
    }

    /// Source-operand index: 0..6 scratch, 6..9 inputs, 9 = r0.
    fn rs(&mut self) -> u8 {
        self.rng.gen_range(0..=NUM_SCRATCH + NUM_INPUTS)
    }
}

/// Generates the program spec for `seed`. Pure function of its arguments.
#[must_use]
pub fn generate(seed: u64, isa: IsaKind) -> ProgSpec {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        budget: 60,
    };
    let code_base = if g.rng.gen_bool(0.5) {
        0x1000
    } else {
        0x0010_0000
    };
    let nfuncs = g.rng.gen_range(1..=5usize);
    let mut levels = vec![0u8];
    for j in 1..nfuncs {
        levels.push(g.rng.gen_range(1..=(j.min(4)) as u8));
    }
    let mut funcs = Vec::with_capacity(nfuncs);
    for j in 0..nfuncs {
        let targets: Vec<usize> = (j + 1..nfuncs)
            .filter(|&k| levels[k] == levels[j] + 1)
            .collect();
        let body = g.body(2..=7, 0, &targets);
        funcs.push(FuncSpec {
            level: levels[j],
            body,
        });
    }
    ProgSpec {
        isa,
        code_base,
        funcs,
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// A lowered program: the linked image plus its auto-emitted annotations.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    pub spec: ProgSpec,
    pub image: Image,
    /// Annotation text (`loop <header> bound N;` lines).
    pub annotations: String,
}

struct Lowerer<'a> {
    b: &'a mut ProgramBuilder,
    /// `(header label, bound)` for every loop that must be annotated.
    annotated: Vec<(String, u16)>,
    next_label: u32,
}

impl Lowerer<'_> {
    fn fresh(&mut self, stem: &str) -> String {
        self.next_label += 1;
        format!("{stem}_{}", self.next_label)
    }

    fn src(&self, idx: u8) -> Reg {
        if idx < NUM_SCRATCH {
            scratch_reg(idx)
        } else if idx < NUM_SCRATCH + NUM_INPUTS {
            input_reg(idx - NUM_SCRATCH)
        } else {
            Reg::ZERO
        }
    }

    fn lower_body(&mut self, body: &[Stmt], loop_depth: u8) {
        for stmt in body {
            self.lower_stmt(stmt, loop_depth);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, loop_depth: u8) {
        match stmt {
            Stmt::Alu { op, rd, rs1, rs2 } => {
                let (rs1, rs2) = (self.src(*rs1), self.src(*rs2));
                self.b.alu(*op, scratch_reg(*rd), rs1, rs2);
            }
            Stmt::AluImm { op, rd, rs1, imm } => {
                let rs1 = self.src(*rs1);
                self.b.alui(*op, scratch_reg(*rd), rs1, *imm);
            }
            Stmt::Li { rd, value } => {
                self.b.li(scratch_reg(*rd), *value);
            }
            Stmt::Load { rd, slot } => {
                self.b.li(addr_tmp(), DATA_BASE + 4 * u32::from(*slot));
                self.b.lw(scratch_reg(*rd), addr_tmp(), 0);
            }
            Stmt::Store { rs, slot } => {
                let rs = self.src(*rs);
                self.b.li(addr_tmp(), DATA_BASE + 4 * u32::from(*slot));
                self.b.sw(rs, addr_tmp(), 0);
            }
            Stmt::LoadIdx { rd, depth } => {
                // data[counter % DATA_SLOTS]: mask, scale, add base.
                let counter = counter_reg((*depth).min(loop_depth.saturating_sub(1)));
                self.b
                    .alui(AluOp::And, addr_tmp(), counter, (DATA_SLOTS - 1) as i32);
                self.b.alui(AluOp::Shl, addr_tmp(), addr_tmp(), 2);
                self.b.li(addr_tmp2(), DATA_BASE);
                self.b.alu(AluOp::Add, addr_tmp(), addr_tmp(), addr_tmp2());
                self.b.lw(scratch_reg(*rd), addr_tmp(), 0);
            }
            Stmt::Diamond {
                cond,
                rs1,
                rs2,
                then_body,
                else_body,
            } => {
                let then_l = self.fresh("then");
                let end_l = self.fresh("end");
                let (rs1, rs2) = (self.src(*rs1), self.src(*rs2));
                self.b.branch(*cond, rs1, rs2, &then_l);
                self.lower_body(else_body, loop_depth);
                self.b.jump(&end_l);
                self.b.label(&then_l);
                self.lower_body(then_body, loop_depth);
                self.b.label(&end_l);
            }
            Stmt::Loop {
                bound,
                annotate,
                body,
            } => {
                let depth = loop_depth.min(MAX_LOOP_DEPTH - 1);
                let counter = counter_reg(depth);
                let head = self.fresh("head");
                // A call in the body clobbers the analyzer's view of the
                // counter (the callee restores it only concretely), so the
                // automatic bound analysis cannot see this loop: the
                // annotation becomes mandatory.
                if *annotate || body_contains_call(body) {
                    self.annotated.push((head.clone(), *bound));
                }
                self.b.li(counter, u32::from(*bound));
                self.b.label(&head);
                self.lower_body(body, depth + 1);
                self.b.alui(AluOp::Sub, counter, counter, 1);
                self.b.branch(Cond::Ne, counter, Reg::ZERO, &head);
            }
            Stmt::Call { callee } => {
                self.b.call(&func_label(*callee));
            }
        }
    }
}

fn func_label(idx: usize) -> String {
    if idx == 0 {
        "main".to_owned()
    } else {
        format!("f{idx}")
    }
}

/// Lowers a spec to a linked image plus its annotation text.
///
/// # Errors
///
/// Propagates [`wcet_isa::IsaError`] from encoding/linking — a spec whose
/// lowering cannot encode is a generator bug, surfaced loudly.
pub fn lower(spec: &ProgSpec) -> Result<GeneratedProgram, wcet_isa::IsaError> {
    let mut b = ProgramBuilder::new_for(spec.isa, spec.code_base);
    let mut low = Lowerer {
        b: &mut b,
        annotated: Vec::new(),
        next_label: 0,
    };
    for (j, func) in spec.funcs.iter().enumerate() {
        low.b.label(&func_label(j));
        if j == 0 {
            low.lower_body(&func.body, 0);
            low.b.halt();
        } else {
            // Callee prologue: save lr and both loop counters so loops in
            // callers survive calls concretely (the analyzer still treats
            // post-call registers as unknown — that asymmetry is exactly
            // what forces annotations on call-bearing loops).
            low.b.alui(AluOp::Sub, Reg::SP, Reg::SP, 12);
            low.b.sw(Reg::LINK, Reg::SP, 0);
            low.b.sw(counter_reg(0), Reg::SP, 4);
            low.b.sw(counter_reg(1), Reg::SP, 8);
            low.lower_body(&func.body, 0);
            low.b.lw(Reg::LINK, Reg::SP, 0);
            low.b.lw(counter_reg(0), Reg::SP, 4);
            low.b.lw(counter_reg(1), Reg::SP, 8);
            low.b.alui(AluOp::Add, Reg::SP, Reg::SP, 12);
            low.b.ret();
        }
    }
    let annotated = std::mem::take(&mut low.annotated);
    b.data_words(
        DATA_BASE,
        &(0..DATA_SLOTS)
            .map(|i| 0x0101_0101u32.wrapping_mul(i + 1))
            .collect::<Vec<_>>(),
    );
    let image = b.build("main")?;
    let mut annotations = String::new();
    for (label, bound) in annotated {
        let header = image.symbol(&label).expect("loop header label was bound");
        annotations.push_str(&format!("loop {header} bound {bound};\n"));
    }
    Ok(GeneratedProgram {
        spec: spec.clone(),
        image,
        annotations,
    })
}

// ---------------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------------

/// One analyzer configuration of the oracle matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleCase {
    pub caches: bool,
    pub context_depth: usize,
    pub persistence: bool,
    pub unrolling: bool,
    pub pipeline: bool,
}

impl fmt::Display for OracleCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "caches={} depth={}{}{}{}",
            self.caches,
            self.context_depth,
            if self.persistence { " persistence" } else { "" },
            if self.unrolling { " unroll" } else { "" },
            if self.pipeline { " pipeline" } else { "" },
        )
    }
}

/// The full matrix every program is checked against.
pub const MATRIX: [OracleCase; 8] = [
    OracleCase {
        caches: false,
        context_depth: 0,
        persistence: false,
        unrolling: false,
        pipeline: false,
    },
    OracleCase {
        caches: false,
        context_depth: 1,
        persistence: false,
        unrolling: false,
        pipeline: false,
    },
    OracleCase {
        caches: true,
        context_depth: 0,
        persistence: false,
        unrolling: false,
        pipeline: false,
    },
    OracleCase {
        caches: true,
        context_depth: 1,
        persistence: false,
        unrolling: false,
        pipeline: false,
    },
    OracleCase {
        caches: true,
        context_depth: 1,
        persistence: true,
        unrolling: false,
        pipeline: false,
    },
    OracleCase {
        caches: true,
        context_depth: 0,
        persistence: false,
        unrolling: true,
        pipeline: false,
    },
    OracleCase {
        caches: false,
        context_depth: 0,
        persistence: false,
        unrolling: false,
        pipeline: true,
    },
    OracleCase {
        caches: true,
        context_depth: 1,
        persistence: true,
        unrolling: false,
        pipeline: true,
    },
];

/// Test-only fault injection, used to prove the oracle + shrinker pipeline
/// actually catches unsoundness (see the shrinker's own test). Hidden from
/// normal use; the CLI always passes [`Sabotage::None`].
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    #[default]
    None,
    /// Analyze with the cache-less machine while the interpreter runs with
    /// caches — drops every cache-miss penalty from the bound, the classic
    /// "forgot the memory hierarchy" unsoundness.
    AnalyzeWithoutCaches,
}

/// What a failed check was checking, precisely enough to re-run just that
/// check during shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// `observed ∈ [BCET, WCET]` for `MATRIX[case]` (also covers analysis
    /// and execution errors under that case).
    Bounds { case: usize },
    /// Report digest identical for 1 and N analysis threads.
    ThreadDeterminism { case: usize },
    /// Report digest identical without a cache, with a cold cache, and
    /// with a warm cache.
    CacheDeterminism { case: usize },
}

/// An oracle violation: the check that failed and a human-readable detail.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: CheckKind,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CheckKind::Bounds { case } => write!(f, "[{}] {}", MATRIX[case], self.detail),
            CheckKind::ThreadDeterminism { case } => {
                write!(f, "[{} thread-determinism] {}", MATRIX[case], self.detail)
            }
            CheckKind::CacheDeterminism { case } => {
                write!(f, "[{} cache-determinism] {}", MATRIX[case], self.detail)
            }
        }
    }
}

fn analyzer_for(
    gp: &GeneratedProgram,
    case: OracleCase,
    sabotage: Sabotage,
    parallelism: usize,
) -> Result<AnalyzerConfig, String> {
    let isa = gp.spec.isa;
    let machine = match (case.caches, sabotage) {
        (true, Sabotage::None) => MachineConfig::with_caches_for(isa),
        (true, Sabotage::AnalyzeWithoutCaches) | (false, _) => MachineConfig::simple_for(isa),
    };
    let annotations =
        AnnotationSet::parse(&gp.annotations).map_err(|e| format!("annotation parse: {e}"))?;
    let mut machine = machine;
    machine.pipeline = case.pipeline;
    Ok(AnalyzerConfig {
        machine,
        annotations,
        check_guidelines: false,
        unrolling: case.unrolling,
        parallelism: Some(parallelism),
        context_depth: case.context_depth,
        persistence: case.persistence,
        pipeline: case.pipeline,
        isa,
        ..AnalyzerConfig::new()
    })
}

/// The machine the *interpreter* runs on for a case — always the real one;
/// sabotage only degrades the analyzer's model.
fn run_machine(isa: IsaKind, case: OracleCase) -> MachineConfig {
    let mut machine = if case.caches {
        MachineConfig::with_caches_for(isa)
    } else {
        MachineConfig::simple_for(isa)
    };
    machine.pipeline = case.pipeline;
    machine
}

/// A deterministic digest of everything an analysis report asserts
/// (bounds, per-function results, worst-path counts, mode table). Every
/// field formatted here is `BTreeMap`/`Vec`-backed, so two runs that
/// compare equal produce byte-identical digests; `incr` statistics are
/// deliberately excluded — a warm report must match a cold one.
#[must_use]
pub fn report_digest(report: &AnalysisReport) -> String {
    let mut out = format!(
        "wcet={} bcet={} modes={:?} path={:?}\n",
        report.wcet_cycles, report.bcet_cycles, report.mode_wcet, report.worst_path
    );
    for (addr, f) in &report.functions {
        out.push_str(&format!(
            "fn {addr}: wcet={} bcet={} counts={:?}\n",
            f.wcet.wcet_cycles, f.bcet.wcet_cycles, f.wcet.block_counts
        ));
    }
    out
}

/// Interpreter fuel: generous against the ≤ 100-iteration loop nests the
/// generator emits; exhausting it means the program (or machine) diverged.
const FUEL: u64 = 20_000_000;

/// Runs the bounds check of `MATRIX[case]` for every input vector.
/// `None` = sound.
fn check_bounds_case(
    gp: &GeneratedProgram,
    case_idx: usize,
    inputs: &[[u32; 3]],
    sabotage: Sabotage,
) -> Option<String> {
    let case = MATRIX[case_idx];
    let config = match analyzer_for(gp, case, sabotage, 1) {
        Ok(c) => c,
        Err(e) => return Some(e),
    };
    let report = match WcetAnalyzer::with_config(config).analyze(&gp.image) {
        Ok(r) => r,
        Err(e) => return Some(format!("analysis failed: {e}")),
    };
    if report.bcet_cycles > report.wcet_cycles {
        return Some(format!(
            "BCET {} exceeds WCET {}",
            report.bcet_cycles, report.wcet_cycles
        ));
    }
    let machine = run_machine(gp.spec.isa, case);
    for (i, input) in inputs.iter().enumerate() {
        let mut interp = Interpreter::with_config(&gp.image, machine.clone());
        for (r, &v) in input.iter().enumerate() {
            interp.set_reg(input_reg(r as u8), v);
        }
        let outcome = match interp.run(FUEL) {
            Ok(o) => o,
            Err(e) => return Some(format!("execution failed on input {input:?}: {e}")),
        };
        if outcome.cycles > report.wcet_cycles || outcome.cycles < report.bcet_cycles {
            return Some(format!(
                "input #{i} {input:?}: observed {} cycles outside [{}, {}]",
                outcome.cycles, report.bcet_cycles, report.wcet_cycles
            ));
        }
    }
    None
}

/// Same analysis at 1 and `threads` workers must digest identically.
fn check_thread_determinism(
    gp: &GeneratedProgram,
    case_idx: usize,
    threads: usize,
    sabotage: Sabotage,
) -> Option<String> {
    let case = MATRIX[case_idx];
    let mut digests = Vec::new();
    for parallelism in [1, threads] {
        let config = match analyzer_for(gp, case, sabotage, parallelism) {
            Ok(c) => c,
            Err(e) => return Some(e),
        };
        match WcetAnalyzer::with_config(config).analyze(&gp.image) {
            Ok(r) => digests.push(report_digest(&r)),
            Err(e) => return Some(format!("analysis failed at {parallelism} thread(s): {e}")),
        }
    }
    (digests[0] != digests[1]).then(|| {
        format!(
            "1-thread and {threads}-thread reports differ:\n{}",
            diff_hint(&digests[0], &digests[1])
        )
    })
}

/// Cache-less, cold-cache, and warm-cache analyses must digest identically.
fn check_cache_determinism(
    gp: &GeneratedProgram,
    case_idx: usize,
    sabotage: Sabotage,
) -> Option<String> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let case = MATRIX[case_idx];
    let config = match analyzer_for(gp, case, sabotage, 1) {
        Ok(c) => c,
        Err(e) => return Some(e),
    };
    let baseline = match WcetAnalyzer::with_config(config.clone()).analyze(&gp.image) {
        Ok(r) => report_digest(&r),
        Err(e) => return Some(format!("uncached analysis failed: {e}")),
    };
    let dir = std::env::temp_dir().join(format!(
        "wcet-fuzz-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut cache = match ArtifactCache::open(&dir) {
            Ok(c) => c,
            Err(e) => return Some(format!("cannot open scratch cache: {e}")),
        };
        for phase in ["cold", "warm"] {
            let analyzer = WcetAnalyzer::with_config(config.clone());
            let digest = match analyzer.analyze_incremental(&gp.image, &mut cache) {
                Ok(r) => report_digest(&r),
                Err(e) => return Some(format!("{phase}-cache analysis failed: {e}")),
            };
            if digest != baseline {
                return Some(format!(
                    "{phase}-cache report differs from the uncached one:\n{}",
                    diff_hint(&baseline, &digest)
                ));
            }
        }
        None
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn diff_hint(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("  {la}\n  vs\n  {lb}");
        }
    }
    format!(
        "  lengths differ: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// Re-runs exactly one check — the shrinker's predicate.
#[must_use]
pub fn recheck(
    gp: &GeneratedProgram,
    kind: CheckKind,
    inputs: &[[u32; 3]],
    sabotage: Sabotage,
) -> Option<Violation> {
    let detail = match kind {
        CheckKind::Bounds { case } => check_bounds_case(gp, case, inputs, sabotage),
        CheckKind::ThreadDeterminism { case } => check_thread_determinism(gp, case, 3, sabotage),
        CheckKind::CacheDeterminism { case } => check_cache_determinism(gp, case, sabotage),
    };
    detail.map(|detail| Violation { kind, detail })
}

/// Knobs of one oracle pass over a program.
#[derive(Debug, Clone, Copy)]
pub struct OracleOptions {
    pub sabotage: Sabotage,
    /// Also compare 1-thread vs N-thread report digests.
    pub check_threads: bool,
    /// Also compare uncached vs cold vs warm artifact-cache digests.
    pub check_cache_determinism: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            sabotage: Sabotage::None,
            check_threads: false,
            check_cache_determinism: false,
        }
    }
}

/// Checks one lowered program against the full matrix. `None` = sound.
#[must_use]
pub fn check_program(
    gp: &GeneratedProgram,
    inputs: &[[u32; 3]],
    opts: &OracleOptions,
) -> Option<Violation> {
    for case in 0..MATRIX.len() {
        if let Some(v) = recheck(gp, CheckKind::Bounds { case }, inputs, opts.sabotage) {
            return Some(v);
        }
    }
    // The most config-laden case carries the determinism checks: contexts
    // + caches + persistence + pipeline exercises the widest artifact set.
    let heavy = MATRIX.len() - 1; // caches, depth 1, persistence, pipeline
    if opts.check_threads {
        if let Some(v) = recheck(
            gp,
            CheckKind::ThreadDeterminism { case: heavy },
            inputs,
            opts.sabotage,
        ) {
            return Some(v);
        }
    }
    if opts.check_cache_determinism {
        if let Some(v) = recheck(
            gp,
            CheckKind::CacheDeterminism { case: heavy },
            inputs,
            opts.sabotage,
        ) {
            return Some(v);
        }
    }
    None
}

/// Derives the input vectors for one program: fixed adversarial corners
/// plus one random triple.
#[must_use]
pub fn input_vectors(seed: u64) -> Vec<[u32; 3]> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f35_6495);
    vec![
        [0, 0, 0],
        [1, 2, 3],
        [u32::MAX, 0x8000_0000, 17],
        [
            rng.gen_range(0..=u32::MAX),
            rng.gen_range(0..=u32::MAX),
            rng.gen_range(0..=u32::MAX),
        ],
    ]
}

// ---------------------------------------------------------------------------
// Greedy structural shrinker
// ---------------------------------------------------------------------------

/// Counts statements in pre-order over the whole program.
fn count_stmts(spec: &ProgSpec) -> usize {
    fn walk(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| match s {
                Stmt::Diamond {
                    then_body,
                    else_body,
                    ..
                } => 1 + walk(then_body) + walk(else_body),
                Stmt::Loop { body, .. } => 1 + walk(body),
                _ => 1,
            })
            .sum()
    }
    spec.funcs.iter().map(|f| walk(&f.body)).sum()
}

/// One structural edit applied at pre-order statement position `target`.
#[derive(Clone, Copy)]
enum Edit {
    /// Delete the statement (and its whole subtree).
    Delete,
    /// Loop: bound := max(1, bound / 2). Diamond/other: no-op.
    HalveBound,
    /// Loop: replace with its body (one unrolled iteration).
    /// Diamond: replace with the then-branch.
    Flatten,
}

/// Applies `edit` to the statement at pre-order position `target`;
/// `None` when the edit does not change the spec.
fn apply_edit(spec: &ProgSpec, target: usize, edit: Edit) -> Option<ProgSpec> {
    fn walk(body: &[Stmt], pos: &mut usize, target: usize, edit: Edit) -> Option<Vec<Stmt>> {
        let mut out = Vec::with_capacity(body.len());
        for stmt in body {
            let here = *pos;
            *pos += 1;
            if here == target {
                match (edit, stmt) {
                    (Edit::Delete, _) => continue,
                    (
                        Edit::HalveBound,
                        Stmt::Loop {
                            bound,
                            annotate,
                            body,
                        },
                    ) if *bound > 1 => {
                        out.push(Stmt::Loop {
                            bound: (*bound / 2).max(1),
                            annotate: *annotate,
                            body: body.clone(),
                        });
                        continue;
                    }
                    (Edit::Flatten, Stmt::Loop { body, .. }) => {
                        out.extend(body.iter().cloned());
                        continue;
                    }
                    (Edit::Flatten, Stmt::Diamond { then_body, .. }) => {
                        out.extend(then_body.iter().cloned());
                        continue;
                    }
                    _ => return None, // edit not applicable here
                }
            }
            // Recurse into compound statements (their children occupy the
            // pre-order positions following them).
            match stmt {
                Stmt::Diamond {
                    cond,
                    rs1,
                    rs2,
                    then_body,
                    else_body,
                } => {
                    let new_then = walk(then_body, pos, target, edit)?;
                    let new_else = walk(else_body, pos, target, edit)?;
                    out.push(Stmt::Diamond {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        then_body: new_then,
                        else_body: new_else,
                    });
                }
                Stmt::Loop {
                    bound,
                    annotate,
                    body,
                } => {
                    let new_body = walk(body, pos, target, edit)?;
                    out.push(Stmt::Loop {
                        bound: *bound,
                        annotate: *annotate,
                        body: new_body,
                    });
                }
                other => out.push(other.clone()),
            }
        }
        Some(out)
    }

    let mut pos = 0usize;
    let mut funcs = Vec::with_capacity(spec.funcs.len());
    for f in &spec.funcs {
        let body = walk(&f.body, &mut pos, target, edit)?;
        funcs.push(FuncSpec {
            level: f.level,
            body,
        });
    }
    let candidate = ProgSpec {
        isa: spec.isa,
        code_base: spec.code_base,
        funcs,
    };
    (candidate != *spec).then_some(candidate)
}

/// Drops function `j` (never 0) and removes every call to it; calls to
/// later functions are re-indexed.
fn drop_function(spec: &ProgSpec, j: usize) -> ProgSpec {
    fn fix(body: &[Stmt], j: usize) -> Vec<Stmt> {
        body.iter()
            .filter_map(|stmt| match stmt {
                Stmt::Call { callee } if *callee == j => None,
                Stmt::Call { callee } if *callee > j => Some(Stmt::Call { callee: callee - 1 }),
                Stmt::Diamond {
                    cond,
                    rs1,
                    rs2,
                    then_body,
                    else_body,
                } => Some(Stmt::Diamond {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    then_body: fix(then_body, j),
                    else_body: fix(else_body, j),
                }),
                Stmt::Loop {
                    bound,
                    annotate,
                    body,
                } => Some(Stmt::Loop {
                    bound: *bound,
                    annotate: *annotate,
                    body: fix(body, j),
                }),
                other => Some(other.clone()),
            })
            .collect()
    }
    let mut funcs = Vec::with_capacity(spec.funcs.len() - 1);
    for (idx, f) in spec.funcs.iter().enumerate() {
        if idx == j {
            continue;
        }
        funcs.push(FuncSpec {
            level: f.level,
            body: fix(&f.body, j),
        });
    }
    ProgSpec {
        isa: spec.isa,
        code_base: spec.code_base,
        funcs,
    }
}

/// Shrink statistics, reported alongside the minimized spec.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShrinkStats {
    /// Candidate specs whose oracle re-check was run.
    pub attempts: usize,
    /// Candidates accepted (each strictly simplified the spec).
    pub accepted: usize,
}

/// Greedily shrinks `spec` while `still_fails` holds: drop whole
/// functions, delete statements, halve loop bounds, flatten loops and
/// diamonds — first-improvement, restarting after every accepted cut.
/// The predicate receives the *lowered* candidate; candidates that fail
/// to lower are discarded without consulting it.
pub fn shrink(
    spec: &ProgSpec,
    mut still_fails: impl FnMut(&GeneratedProgram) -> bool,
) -> (ProgSpec, ShrinkStats) {
    let mut stats = ShrinkStats::default();
    let mut current = spec.clone();
    // Hard cap on oracle evaluations — shrinking is best-effort.
    let mut budget = 3000usize;
    'outer: loop {
        // Pass 1: drop functions, last first (leaves go before trunks).
        for j in (1..current.funcs.len()).rev() {
            if budget == 0 {
                break 'outer;
            }
            let candidate = drop_function(&current, j);
            budget -= 1;
            stats.attempts += 1;
            if let Ok(gp) = lower(&candidate) {
                if still_fails(&gp) {
                    stats.accepted += 1;
                    current = candidate;
                    continue 'outer;
                }
            }
        }
        // Pass 2: per-statement edits, deletions first.
        let n = count_stmts(&current);
        for edit in [Edit::Delete, Edit::Flatten, Edit::HalveBound] {
            for target in 0..n {
                if budget == 0 {
                    break 'outer;
                }
                let Some(candidate) = apply_edit(&current, target, edit) else {
                    continue;
                };
                budget -= 1;
                stats.attempts += 1;
                if let Ok(gp) = lower(&candidate) {
                    if still_fails(&gp) {
                        stats.accepted += 1;
                        current = candidate;
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }
    (current, stats)
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Options of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of programs to generate per ISA.
    pub programs: u64,
    /// Campaign seed; every program seed derives from it.
    pub seed: u64,
    /// ISAs to fuzz (default: both).
    pub isas: Vec<IsaKind>,
    /// Run the thread-determinism check on every `n`-th program (0 = off).
    pub thread_check_every: u64,
    /// Run the warm/cold cache-determinism check on every `n`-th program
    /// (0 = off). Touches the filesystem, hence subsampled.
    pub cache_check_every: u64,
    /// Emit a progress line to stderr every `n` programs (0 = quiet).
    pub progress_every: u64,
    /// Fault injection (tests only).
    pub sabotage: Sabotage,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            programs: 100,
            seed: 1,
            isas: vec![IsaKind::House, IsaKind::Rv32i],
            thread_check_every: 16,
            cache_check_every: 64,
            progress_every: 0,
            sabotage: Sabotage::None,
        }
    }
}

/// A campaign failure: the first program the oracle rejected, minimized.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the failing program within the campaign.
    pub index: u64,
    /// Its derived generator seed (replays via [`generate`]).
    pub program_seed: u64,
    pub isa: IsaKind,
    /// The violation observed on the *original* program.
    pub violation: Violation,
    /// The violation observed on the minimized program.
    pub minimized_violation: Violation,
    /// The minimized reproducer.
    pub minimized: GeneratedProgram,
    pub shrink: ShrinkStats,
}

/// The result of a campaign: programs checked per ISA, and the first
/// failure (shrunk) if any.
#[derive(Debug)]
pub struct FuzzReport {
    pub programs_checked: u64,
    pub failure: Option<FuzzFailure>,
}

/// Runs a fuzzing campaign, stopping (and shrinking) at the first oracle
/// violation.
#[must_use]
pub fn run_campaign(opts: &FuzzOptions) -> FuzzReport {
    let mut checked = 0u64;
    for index in 0..opts.programs {
        for &isa in &opts.isas {
            let seed = program_seed(opts.seed, index, isa);
            let spec = generate(seed, isa);
            let gp = match lower(&spec) {
                Ok(gp) => gp,
                Err(e) => {
                    // A spec the lowerer cannot encode is a generator bug;
                    // report it as loudly as an unsoundness.
                    let violation = Violation {
                        kind: CheckKind::Bounds { case: 0 },
                        detail: format!("generated spec failed to lower: {e}"),
                    };
                    return FuzzReport {
                        programs_checked: checked,
                        failure: Some(FuzzFailure {
                            index,
                            program_seed: seed,
                            isa,
                            violation: violation.clone(),
                            minimized_violation: violation,
                            minimized: GeneratedProgram {
                                spec,
                                image: Image::default(),
                                annotations: String::new(),
                            },
                            shrink: ShrinkStats::default(),
                        }),
                    };
                }
            };
            let inputs = input_vectors(seed);
            let oracle = OracleOptions {
                sabotage: opts.sabotage,
                check_threads: opts.thread_check_every != 0 && index % opts.thread_check_every == 0,
                check_cache_determinism: opts.cache_check_every != 0
                    && index % opts.cache_check_every == 0,
            };
            if let Some(violation) = check_program(&gp, &inputs, &oracle) {
                let kind = violation.kind;
                let sabotage = opts.sabotage;
                let (min_spec, shrink_stats) = shrink(&spec, |cand| {
                    recheck(cand, kind, &inputs, sabotage).is_some()
                });
                let minimized = lower(&min_spec).expect("accepted shrink candidates lower");
                let minimized_violation = recheck(&minimized, kind, &inputs, sabotage)
                    .unwrap_or_else(|| violation.clone());
                return FuzzReport {
                    programs_checked: checked,
                    failure: Some(FuzzFailure {
                        index,
                        program_seed: seed,
                        isa,
                        violation,
                        minimized_violation,
                        minimized,
                        shrink: shrink_stats,
                    }),
                };
            }
            checked += 1;
        }
        if opts.progress_every != 0 && (index + 1) % opts.progress_every == 0 {
            eprintln!(
                "wcet fuzz: {}/{} programs checked ({} analyses)",
                index + 1,
                opts.programs,
                checked * MATRIX.len() as u64
            );
        }
    }
    FuzzReport {
        programs_checked: checked,
        failure: None,
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle violation at program #{} (seed {}, isa {}):",
            self.index,
            self.program_seed,
            self.isa.name()
        )?;
        writeln!(f, "  {}", self.violation)?;
        writeln!(
            f,
            "minimized to {} instruction(s) after {} shrink attempt(s) ({} accepted):",
            self.minimized.image.code_len(),
            self.shrink.attempts,
            self.shrink.accepted
        )?;
        writeln!(f, "  {}", self.minimized_violation)?;
        match wcet_isa::disasm::disassemble(&self.minimized.image) {
            Ok(listing) => {
                for line in listing.lines() {
                    writeln!(f, "    {line}")?;
                }
            }
            Err(e) => writeln!(f, "    <disassembly unavailable: {e}>")?,
        }
        if !self.minimized.annotations.is_empty() {
            writeln!(f, "  annotations:")?;
            for line in self.minimized.annotations.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        write!(f, "  spec: {:?}", self.minimized.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, IsaKind::House);
        let b = generate(42, IsaKind::House);
        assert_eq!(a, b);
        // Different seeds give different programs (overwhelmingly likely).
        let c = generate(43, IsaKind::House);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_lower_and_terminate_on_both_isas() {
        for isa in [IsaKind::House, IsaKind::Rv32i] {
            for seed in 0..40u64 {
                let spec = generate(program_seed(7, seed, isa), isa);
                let gp = lower(&spec).unwrap_or_else(|e| {
                    panic!("seed {seed} ({}) failed to lower: {e}", isa.name())
                });
                let mut interp =
                    Interpreter::with_config(&gp.image, MachineConfig::simple_for(isa));
                let outcome = interp
                    .run(FUEL)
                    .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", isa.name()));
                assert!(outcome.instructions > 0);
            }
        }
    }

    #[test]
    fn annotations_parse_and_match_trip_counts() {
        // A call-bearing loop must be annotated with its exact trip count.
        let spec = ProgSpec {
            isa: IsaKind::House,
            code_base: 0x1000,
            funcs: vec![
                FuncSpec {
                    level: 0,
                    body: vec![Stmt::Loop {
                        bound: 5,
                        annotate: false,
                        body: vec![Stmt::Call { callee: 1 }],
                    }],
                },
                FuncSpec {
                    level: 1,
                    body: vec![Stmt::AluImm {
                        op: AluOp::Add,
                        rd: 0,
                        rs1: 0,
                        imm: 1,
                    }],
                },
            ],
        };
        let gp = lower(&spec).unwrap();
        let annots = AnnotationSet::parse(&gp.annotations).expect("emitted annotations parse");
        assert_eq!(annots.loop_bound_annotations().len(), 1);
        assert_eq!(annots.loop_bound_annotations()[0].bound, 5);
        // And the oracle holds on it.
        assert!(check_program(&gp, &input_vectors(0), &OracleOptions::default()).is_none());
    }

    #[test]
    fn shrinker_edits_preserve_wellformedness() {
        let spec = generate(1234, IsaKind::House);
        let n = count_stmts(&spec);
        for target in 0..n {
            for edit in [Edit::Delete, Edit::Flatten, Edit::HalveBound] {
                if let Some(candidate) = apply_edit(&spec, target, edit) {
                    lower(&candidate).expect("edited specs still lower");
                }
            }
        }
        for j in 1..spec.funcs.len() {
            lower(&drop_function(&spec, j)).expect("function-dropped specs still lower");
        }
    }
}
