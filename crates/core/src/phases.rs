//! The per-phase artifact trace (Figure 1 regeneration).
//!
//! Every [`crate::analyzer::WcetAnalyzer`] run records what each phase of
//! the Figure 1 pipeline consumed and produced; experiment E2 prints the
//! trace in the figure's shape.

use std::fmt;
use std::time::Duration;

/// Statistics for one analyzer run, grouped by pipeline phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Decoding phase: instruction words decoded.
    pub decoded_insts: usize,
    /// CFG reconstruction: functions discovered.
    pub functions: usize,
    /// CFG reconstruction: basic blocks across all functions.
    pub blocks: usize,
    /// CFG reconstruction: intraprocedural edges.
    pub edges: usize,
    /// Indirect sites unresolved before value analysis.
    pub unresolved_initial: usize,
    /// Indirect sites still unresolved after target resolution rounds.
    pub unresolved_final: usize,
    /// Re-reconstruction rounds driven by value-analysis target hints.
    pub resolve_rounds: usize,
    /// Loop/value analysis: loops found.
    pub loops: usize,
    /// Loops bounded automatically.
    pub loops_bounded_auto: usize,
    /// Loops bounded by annotation.
    pub loops_bounded_annot: usize,
    /// Cache/pipeline analysis: fetch/data accesses classified always-hit.
    pub cache_always_hit: usize,
    /// Accesses classified always-miss.
    pub cache_always_miss: usize,
    /// Accesses classified first-miss (persistence analysis runs only;
    /// always zero otherwise).
    pub cache_first_miss: usize,
    /// Accesses not classified.
    pub cache_not_classified: usize,
    /// Conditional-branch edges priced by the static BTFNT predictor
    /// (pipeline analysis runs only; always zero otherwise).
    pub pipeline_edges: usize,
    /// Path analysis: ILP variables of the entry function's system.
    pub ilp_vars: usize,
    /// Path analysis: ILP constraints of the entry function's system.
    pub ilp_constraints: usize,
    /// Path analysis: simplex pivots (including bound flips) summed over
    /// every IPET solve of the run.
    pub lp_pivots: u64,
    /// Path analysis: basis refactorizations triggered by the eta-file
    /// length or stability threshold, summed over every IPET solve.
    pub lp_refactorizations: u64,
    /// Path analysis: variables plus rows eliminated by LP presolve,
    /// summed over every IPET solve.
    pub lp_presolve_removed: u64,
    /// Wall-clock time per phase, in pipeline order (decode, cfg,
    /// loop/value, cache/pipeline, path).
    pub phase_times: [Duration; 5],
    /// Summed per-function work time per phase, same order. Equal to the
    /// wall time for the serial decode/CFG phases; under the parallel
    /// wavefront scheduler the fan-out phases report the total work done
    /// across all workers, so phase accounting never under-reports when
    /// wall time shrinks with thread count.
    pub phase_work_times: [Duration; 5],
}

impl PhaseTrace {
    /// Names of the five phases, in pipeline order (Figure 1's boxes).
    pub const PHASE_NAMES: [&'static str; 5] = [
        "Decoding Phase",
        "Control-flow Graph",
        "Loop/Value Analysis",
        "Cache/Pipeline Analysis",
        "Path Analysis",
    ];

    /// Total analysis wall-clock time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.phase_times.iter().sum()
    }

    /// Total work time across all workers (≥ [`Self::total_time`] when
    /// the scheduler fanned out).
    #[must_use]
    pub fn total_work_time(&self) -> Duration {
        self.phase_work_times.iter().sum()
    }

    /// Renders one phase's timing: wall clock, plus the summed work time
    /// when the wavefront scheduler actually fanned out (work > wall).
    /// Sequential runs stay terse — their work figure trails wall by
    /// per-item measurement overhead, which would read as under-reporting.
    fn fmt_time(&self, phase: usize) -> String {
        let wall = self.phase_times[phase];
        let work = self.phase_work_times[phase];
        if work > wall {
            format!("{wall:?} wall, {work:?} work")
        } else {
            format!("{wall:?}")
        }
    }
}

impl fmt::Display for PhaseTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Input Executable")?;
        writeln!(f, "      |")?;
        writeln!(
            f,
            "  [1] {}: {} instruction words ({})",
            Self::PHASE_NAMES[0],
            self.decoded_insts,
            self.fmt_time(0)
        )?;
        writeln!(f, "      |")?;
        writeln!(
            f,
            "  [2] {}: {} function(s), {} block(s), {} edge(s), \
             {} -> {} unresolved indirect site(s) over {} round(s) ({})",
            Self::PHASE_NAMES[1],
            self.functions,
            self.blocks,
            self.edges,
            self.unresolved_initial,
            self.unresolved_final,
            self.resolve_rounds,
            self.fmt_time(1)
        )?;
        writeln!(f, "      |")?;
        writeln!(
            f,
            "  [3] {}: {} loop(s), {} bounded automatically, {} by annotation ({})",
            Self::PHASE_NAMES[2],
            self.loops,
            self.loops_bounded_auto,
            self.loops_bounded_annot,
            self.fmt_time(2)
        )?;
        writeln!(f, "      |")?;
        // First-miss counts render only when the persistence analysis
        // produced any, so persistence-off reports stay byte-identical.
        let first_miss = if self.cache_first_miss > 0 {
            format!(" / {} first-miss", self.cache_first_miss)
        } else {
            String::new()
        };
        // Same rule for the branch-prediction counter: pipeline-off
        // traces keep the exact line older versions emitted.
        let pipeline = if self.pipeline_edges > 0 {
            format!(", {} branch edge(s) predicted", self.pipeline_edges)
        } else {
            String::new()
        };
        writeln!(
            f,
            "  [4] {}: {} always-hit / {} always-miss{first_miss} / {} not-classified{pipeline} ({})",
            Self::PHASE_NAMES[3],
            self.cache_always_hit,
            self.cache_always_miss,
            self.cache_not_classified,
            self.fmt_time(3)
        )?;
        writeln!(f, "      |")?;
        // Solver counters render only when nonzero (same rule as
        // first-miss above): cached-replay and trivial runs keep the
        // exact line older versions emitted.
        let mut lp = String::new();
        if self.lp_pivots > 0 {
            lp.push_str(&format!(", {} pivot(s)", self.lp_pivots));
        }
        if self.lp_refactorizations > 0 {
            lp.push_str(&format!(
                ", {} refactorization(s)",
                self.lp_refactorizations
            ));
        }
        if self.lp_presolve_removed > 0 {
            lp.push_str(&format!(", {} presolved away", self.lp_presolve_removed));
        }
        writeln!(
            f,
            "  [5] {}: ILP with {} variable(s), {} constraint(s){lp} ({})",
            Self::PHASE_NAMES[4],
            self.ilp_vars,
            self.ilp_constraints,
            self.fmt_time(4)
        )?;
        writeln!(f, "      |")?;
        write!(f, "WCET Bound")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_all_phases() {
        let trace = PhaseTrace {
            decoded_insts: 10,
            functions: 1,
            blocks: 3,
            edges: 3,
            loops: 1,
            loops_bounded_auto: 1,
            ..PhaseTrace::default()
        };
        let text = trace.to_string();
        for name in PhaseTrace::PHASE_NAMES {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.starts_with("Input Executable"));
        assert!(text.ends_with("WCET Bound"));
    }

    #[test]
    fn first_miss_rendered_only_when_present() {
        let mut trace = PhaseTrace::default();
        assert!(
            !trace.to_string().contains("first-miss"),
            "persistence-off traces stay byte-identical"
        );
        trace.cache_first_miss = 4;
        assert!(trace.to_string().contains("/ 4 first-miss /"));
    }

    #[test]
    fn pipeline_counter_rendered_only_when_present() {
        let mut trace = PhaseTrace::default();
        assert!(
            !trace.to_string().contains("predicted"),
            "pipeline-off traces stay byte-identical"
        );
        trace.pipeline_edges = 6;
        assert!(trace.to_string().contains(", 6 branch edge(s) predicted"));
    }

    #[test]
    fn lp_counters_rendered_only_when_nonzero() {
        let mut trace = PhaseTrace::default();
        let plain = trace.to_string();
        assert!(
            !plain.contains("pivot") && !plain.contains("presolved"),
            "zero LP counters stay invisible"
        );
        trace.lp_pivots = 12;
        trace.lp_presolve_removed = 7;
        let text = trace.to_string();
        assert!(text.contains(", 12 pivot(s)"), "{text}");
        assert!(
            !text.contains("refactorization"),
            "zero refactorizations stay invisible: {text}"
        );
        assert!(text.contains(", 7 presolved away"), "{text}");
        trace.lp_refactorizations = 2;
        assert!(trace.to_string().contains(", 2 refactorization(s)"));
    }

    #[test]
    fn total_time_sums() {
        let mut trace = PhaseTrace::default();
        trace.phase_times[0] = Duration::from_millis(2);
        trace.phase_times[4] = Duration::from_millis(3);
        assert_eq!(trace.total_time(), Duration::from_millis(5));
    }

    #[test]
    fn work_time_shown_only_when_fanned_out() {
        let mut trace = PhaseTrace::default();
        trace.phase_times[4] = Duration::from_millis(3);
        trace.phase_work_times[4] = Duration::from_millis(3);
        assert!(
            !trace.to_string().contains("work"),
            "wall == work stays terse"
        );
        // Sequential runs: work trails wall by measurement overhead —
        // still terse, never rendered as under-reported work.
        trace.phase_work_times[4] = Duration::from_millis(2);
        assert!(
            !trace.to_string().contains("work"),
            "work < wall stays terse"
        );
        trace.phase_work_times[4] = Duration::from_millis(9);
        let text = trace.to_string();
        assert!(text.contains("3ms wall, 9ms work"), "divergent: {text}");
        assert_eq!(trace.total_work_time(), Duration::from_millis(9));
    }
}
