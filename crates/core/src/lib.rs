//! # wcet-core — the complete static WCET analyzer
//!
//! This crate wires every substrate of the workspace into the phase
//! pipeline of the paper's Figure 1:
//!
//! ```text
//! input executable ─▶ decoding ─▶ CFG reconstruction ─▶ loop/value analysis
//!        ─▶ cache/pipeline analysis ─▶ path analysis (IPET) ─▶ WCET bound
//! ```
//!
//! * [`analyzer`] — [`analyzer::WcetAnalyzer`], the public entry point:
//!   give it a binary [`wcet_isa::Image`] and (optionally) design-level
//!   annotations, get back per-function and per-operating-mode WCET/BCET
//!   bounds, the worst-case path, a phase trace, and the guideline
//!   findings,
//! * [`phases`] — the per-phase artifact trace (experiment E2 regenerates
//!   Figure 1 from it),
//! * [`workload`] — generators for the paper's motivating software
//!   structures: flight-control mode switching, CAN-style message
//!   handlers, jump-table state machines, error-handling tasks,
//!   single-path kernels, cache-killer layouts,
//! * [`experiments`] — one driver per paper table/figure/claim (E1–E16);
//!   the bench harness and EXPERIMENTS.md are generated from these.
//!
//! # Example
//!
//! ```
//! use wcet_core::analyzer::WcetAnalyzer;
//! use wcet_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "main: li r1, 16\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt",
//! )?;
//! let report = WcetAnalyzer::new().analyze(&image)?;
//! assert!(report.wcet_cycles > 0);
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the worker pool's scoped-lifetime transmute in
// [`parallel`] is the workspace's single audited unsafe block, behind a
// local allow with its safety argument.
#![deny(unsafe_code)]

pub mod analyzer;
pub mod experiments;
pub mod fuzz;
pub mod incr;
pub mod parallel;
pub mod phases;
pub mod serve;
pub mod workload;

pub use analyzer::{AnalysisReport, AnalyzeError, AnalyzerConfig, WcetAnalyzer};
pub use incr::{ArtifactCache, IncrStats};
