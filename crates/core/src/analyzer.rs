//! The complete aiT-style analyzer (Figure 1 end to end).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use wcet_analysis::loopbound::{BoundResult, BoundSource, LoopBounds};
use wcet_analysis::state::AbstractState;
use wcet_analysis::valueanalysis::AnalysisConfig;
use wcet_analysis::{analyze_function, FunctionAnalysis};
use wcet_cfg::callgraph::{CallGraph, ContextTable, CtxId};
use wcet_cfg::dom::Dominators;
use wcet_cfg::graph::{reconstruct, Cfg, Program};
use wcet_cfg::loops::LoopForest;
use wcet_cfg::CfgError;
use wcet_guidelines::annot::AnnotationSet;
use wcet_guidelines::report::PredictabilityReport;
use wcet_guidelines::rules::{check_function, check_image_level, sort_findings, Finding};
use wcet_isa::hash::StableHasher;
use wcet_isa::interp::MachineConfig;
use wcet_isa::{Addr, Image, IsaKind};
use wcet_micro::blocktime::BlockTimes;
use wcet_micro::cacheanalysis::{CacheAnalysis, CacheCtx, CacheStates};
use wcet_micro::footprint::{self, CacheFootprint};
use wcet_micro::pipeline::{self, BranchPenalties, PipelineStates};
use wcet_path::ipet::{self, CallCosts, LpStats, PathError, WcetResult};

use crate::incr::{
    ipet_ctx_struct_key, ipet_full_key, ipet_site_full_key, ipet_struct_key, ArtifactCache,
    FootprintArtifact, FunctionArtifact, IncrStats, IpetEntry, KeyContext,
};
use crate::parallel::{self, WorkerPool};
use crate::phases::PhaseTrace;

/// Configuration of a [`WcetAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// The hardware model (memory map, base timing, caches).
    pub machine: MachineConfig,
    /// Design-level annotations (Section 4.3).
    pub annotations: AnnotationSet,
    /// Maximum rounds of value-analysis-driven indirect-target
    /// resolution and CFG re-reconstruction.
    pub max_resolve_rounds: usize,
    /// Also run the guideline checker and attach its report.
    pub check_guidelines: bool,
    /// Virtually unroll (peel the first iteration of) every reducible
    /// loop before the cache/pipeline and path analyses — aiT's
    /// precision-enhancing context expansion (reference \[13\] of the
    /// paper). Irreducible loops cannot be peeled; they are analyzed
    /// as-is (or rejected by the loop-bound analysis).
    pub unrolling: bool,
    /// Worker threads for the per-function phases (the wavefront
    /// scheduler): `None` = one per available core, `Some(1)` =
    /// sequential, `Some(n)` = exactly `n` workers. The report is
    /// identical for every setting — the schedule is deterministic and
    /// results merge in function-address order.
    pub parallelism: Option<usize>,
    /// Call-string context depth `k` for VIVU-style context expansion
    /// (reference \[13\]): `0` (the default) analyzes one merged unit per
    /// function — exactly the classic pipeline — while `k ≥ 1` analyzes
    /// one *(function, call-string)* unit per distinct suffix of up to
    /// `k` call sites, propagating the caller's register intervals and
    /// abstract cache state into each callee context instead of ⊤.
    /// Recursive SCCs are always truncated to one merged context.
    pub context_depth: usize,
    /// Per-context cache **persistence analysis** (first-miss
    /// classification) with callee **footprint summaries**: calls age the
    /// caller's abstract cache by what the callee can actually touch
    /// instead of clobbering it, and accesses whose line provably never
    /// ages out are charged one miss per activation instead of one per
    /// iteration. Takes effect in the context-sensitive pipeline
    /// (`context_depth ≥ 1`) on machines with caches; the depth-0
    /// pipeline ignores it (its reports must stay byte-identical to the
    /// classic analyzer). Off by default.
    pub persistence: bool,
    /// Abstract in-order **pipeline timing** with static BTFNT branch
    /// prediction: block costs become retirement deltas computed from an
    /// abstract pipeline state carried block-to-block (and, at
    /// `context_depth ≥ 1`, into callees per context), and conditional
    /// branches pay [`wcet_isa::timing::TimingModel::mispredict_penalty`]
    /// on their statically mispredicted CFG edge. This flag only changes
    /// the *analysis*; pair it with [`MachineConfig::pipeline`] when
    /// simulating the concrete machine. Off by default; flag-off reports
    /// are byte-identical to previous versions.
    pub pipeline: bool,
    /// Which instruction-set backend the analyzed images use. The decode
    /// pipeline itself dispatches on [`Image::isa`], so this field exists
    /// for the *cache key space*: it is hashed into
    /// [`crate::incr::config_fingerprint`] so artifacts produced under one
    /// ISA can never be replayed under another. Keep it equal to the tag
    /// of the images this config analyzes (use [`AnalyzerConfig::for_isa`]).
    pub isa: IsaKind,
}

impl AnalyzerConfig {
    /// Defaults: simple machine, no annotations, 3 resolve rounds,
    /// guideline checking on, one worker per core.
    #[must_use]
    pub fn new() -> AnalyzerConfig {
        AnalyzerConfig {
            machine: MachineConfig::simple(),
            annotations: AnnotationSet::new(),
            max_resolve_rounds: 3,
            check_guidelines: true,
            unrolling: false,
            parallelism: None,
            context_depth: 0,
            persistence: false,
            pipeline: false,
            isa: IsaKind::House,
        }
    }

    /// Defaults retargeted at `isa`: the machine model becomes that ISA's
    /// simple machine (its base timing over the shared embedded memory
    /// map) and the config's ISA tag is set so the artifact-cache key
    /// space forks accordingly.
    #[must_use]
    pub fn for_isa(isa: IsaKind) -> AnalyzerConfig {
        AnalyzerConfig {
            machine: MachineConfig::simple_for(isa),
            isa,
            ..AnalyzerConfig::new()
        }
    }
}

/// `Default` delegates to [`AnalyzerConfig::new`]. It was once derived,
/// which silently produced `max_resolve_rounds = 0` and
/// `check_guidelines = false` — every `..Default::default()` call site
/// skipped indirect-target resolution and guideline checking while the
/// documented defaults claimed otherwise.
impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig::new()
    }
}

/// Why a full analysis failed.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Control-flow reconstruction failed.
    Cfg(CfgError),
    /// The call graph is cyclic (MISRA rule 16.2): bottom-up WCET
    /// composition is impossible without recursion-depth annotations.
    Recursion {
        /// The functions participating in cycles.
        functions: Vec<Addr>,
    },
    /// Path analysis failed for a function.
    Path {
        /// The function whose analysis failed.
        function: Addr,
        /// The underlying error (unbounded loops carry their reasons).
        error: PathError,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Cfg(e) => write!(f, "control-flow reconstruction: {e}"),
            AnalyzeError::Recursion { functions } => {
                write!(f, "recursive functions (rule 16.2): {functions:?}")
            }
            AnalyzeError::Path { function, error } => {
                write!(f, "path analysis of {function}: {error}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<CfgError> for AnalyzeError {
    fn from(e: CfgError) -> Self {
        AnalyzeError::Cfg(e)
    }
}

/// Per-function results within a report.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// WCET bound in cycles (includes callees).
    pub wcet: WcetResult,
    /// BCET bound in cycles (includes callees).
    pub bcet: WcetResult,
}

/// The complete output of one analyzer run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The reconstructed program (after target resolution).
    pub program: Program,
    /// WCET bound of the task (the entry function), in cycles, in the
    /// global (mode-oblivious) analysis.
    pub wcet_cycles: u64,
    /// BCET bound of the task, in cycles.
    pub bcet_cycles: u64,
    /// The worst-case path through the entry function. Block ids refer to
    /// [`Self::analyzed_entry_cfg`], not necessarily `program.entry_cfg()`:
    /// virtual unrolling analyzes a peeled copy with extra blocks.
    pub worst_path: Vec<wcet_cfg::BlockId>,
    /// Per-function CFGs as the timing/path phases analyzed them, for the
    /// functions where that differs from `program`'s reconstruction —
    /// i.e. the peeled copies produced by virtual unrolling. Block ids in
    /// any `worst_path` refer to these.
    pub analyzed_cfgs: BTreeMap<Addr, wcet_cfg::Cfg>,
    /// Per-function results (global mode).
    pub functions: BTreeMap<Addr, FunctionReport>,
    /// Per-operating-mode task WCET bounds (`None` key = global).
    pub mode_wcet: BTreeMap<Option<String>, u64>,
    /// Guideline findings, when checking was enabled.
    pub guidelines: Option<PredictabilityReport>,
    /// The Figure 1 phase trace.
    pub trace: PhaseTrace,
    /// Incremental-cache statistics, when the run used an
    /// [`ArtifactCache`]. Never part of the rendered analysis text — a
    /// warm report must be byte-identical to a cold one.
    pub incr: Option<IncrStats>,
}

impl AnalysisReport {
    /// The CFG of `f` as the timing/path phases analyzed it: the peeled
    /// copy when virtual unrolling expanded it, otherwise the
    /// reconstruction in [`Self::program`]. Block ids in `worst_path`
    /// fields are valid for this CFG.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a reconstructed function of the program.
    #[must_use]
    pub fn analyzed_cfg(&self, f: Addr) -> &wcet_cfg::Cfg {
        self.analyzed_cfgs
            .get(&f)
            .or_else(|| self.program.cfg(f))
            .expect("function was reconstructed")
    }

    /// The entry function's CFG as analyzed (see [`Self::analyzed_cfg`]).
    #[must_use]
    pub fn analyzed_entry_cfg(&self) -> &wcet_cfg::Cfg {
        self.analyzed_cfg(self.program.entry)
    }
}

/// The analyzer.
#[derive(Debug, Clone, Default)]
pub struct WcetAnalyzer {
    config: AnalyzerConfig,
    /// A shared persistent [`WorkerPool`]. `None` (the default) builds a
    /// private pool per run, sized by `config.parallelism`; the serve
    /// daemon passes one pool so every request reuses the same threads.
    pool: Option<std::sync::Arc<WorkerPool>>,
}

impl WcetAnalyzer {
    /// An analyzer with default configuration.
    #[must_use]
    pub fn new() -> WcetAnalyzer {
        WcetAnalyzer {
            config: AnalyzerConfig::new(),
            pool: None,
        }
    }

    /// An analyzer with explicit configuration.
    #[must_use]
    pub fn with_config(config: AnalyzerConfig) -> WcetAnalyzer {
        WcetAnalyzer { config, pool: None }
    }

    /// Runs every fan-out on `pool` instead of a run-private pool. The
    /// report stays byte-identical at any pool size; `config.parallelism`
    /// is ignored while a shared pool is attached.
    #[must_use]
    pub fn with_pool(mut self, pool: std::sync::Arc<WorkerPool>) -> WcetAnalyzer {
        self.pool = Some(pool);
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs the full pipeline on a binary image.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`]; unbounded loops and unresolved indirections
    /// surface as [`AnalyzeError::Path`] with the tier-one diagnosis
    /// attached.
    pub fn analyze(&self, image: &Image) -> Result<AnalysisReport, AnalyzeError> {
        self.analyze_impl(image, None)
    }

    /// [`Self::analyze`] against a persistent [`ArtifactCache`].
    ///
    /// Functions whose content key (bytes, resolved control flow, image
    /// data, callee summaries, configuration) matches a cached artifact
    /// skip value analysis, block timing, guideline checking, and — when
    /// their callees' bounds are unchanged — the IPET solve; everything
    /// is replayed from the cache. Changed functions and their transitive
    /// callers (the [`CallGraph::transitive_callers`] closure) recompute,
    /// and their artifacts are stored for the next run. The report is
    /// **byte-identical** to [`Self::analyze`] on the same image and
    /// configuration, at any thread count; [`AnalysisReport::incr`]
    /// carries the hit statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::analyze`].
    pub fn analyze_incremental(
        &self,
        image: &Image,
        cache: &mut ArtifactCache,
    ) -> Result<AnalysisReport, AnalyzeError> {
        self.analyze_impl(image, Some(cache))
    }

    /// The pipeline-state entry digest a depth-0 function artifact must
    /// carry under this configuration: the digest of the abstract entry
    /// pipe its block times were derived against (the drained pipe for
    /// the task entry, the unknown pipe for callees), or `None` with the
    /// pipeline model off.
    fn pipeline_entry_digest(&self, is_entry: bool) -> Option<u64> {
        self.config.pipeline.then(|| {
            if is_entry {
                PipelineStates::drained().digest()
            } else {
                PipelineStates::unknown(&self.config.machine).digest()
            }
        })
    }

    fn analyze_impl(
        &self,
        image: &Image,
        mut cache: Option<&mut ArtifactCache>,
    ) -> Result<AnalysisReport, AnalyzeError> {
        let mut trace = PhaseTrace::default();
        let owned_pool;
        let pool: &WorkerPool = match &self.pool {
            Some(shared) => shared.as_ref(),
            None => {
                owned_pool = WorkerPool::new(parallel::worker_count(self.config.parallelism));
                &owned_pool
            }
        };
        let key_ctx = cache.as_ref().map(|_| KeyContext::new(image, &self.config));
        let mut stats = IncrStats::default();

        // --- Phase 1: decoding --------------------------------------
        let t0 = Instant::now();
        let decoded = image.decode_code().map_err(CfgError::Decode)?;
        trace.decoded_insts = decoded.len();
        trace.phase_times[0] = t0.elapsed();
        trace.phase_work_times[0] = trace.phase_times[0];

        // --- Phase 2: CFG reconstruction (+ resolution rounds) -------
        let t1 = Instant::now();
        let mut resolver = self.config.annotations.to_resolver();
        let mut program = reconstruct(image, &resolver)?;
        trace.unresolved_initial = program.unresolved_sites().len();
        let mut phases_map: BTreeMap<Addr, FnPhase> = BTreeMap::new();
        let t2_accum = Instant::now();
        let mut value_time = t2_accum.elapsed();
        let mut value_work = Duration::ZERO;
        let max_rounds = self.config.max_resolve_rounds.max(1);
        for round in 0..max_rounds {
            // Phase 3 runs inside the loop: value analysis may resolve
            // indirect targets, requiring re-reconstruction. Functions
            // are analyzed independently, so every round fans out flat —
            // after cached functions are peeled off on the coordinator.
            let tv = Instant::now();
            let funcs: Vec<Addr> = program.functions.keys().copied().collect();
            let mut keys: BTreeMap<Addr, u64> = BTreeMap::new();
            let mut cold: Vec<Addr> = Vec::new();
            phases_map = BTreeMap::new();
            if let Some(ctx) = &key_ctx {
                let summaries = wcet_analysis::valueanalysis::compute_summaries(&program);
                let store = cache
                    .as_deref_mut()
                    .expect("cache present with key context");
                for &f in &funcs {
                    let cfg = program.cfg(f).expect("reconstructed");
                    let key = ctx.function_key(cfg, &summaries);
                    keys.insert(f, key);
                    match store.lookup_fn(key) {
                        Some(artifact) => {
                            phases_map.insert(f, FnPhase::Warm { key, artifact });
                        }
                        None => cold.push(f),
                    }
                }
            } else {
                cold.clone_from(&funcs);
            }
            let (results, work) =
                pool.map_in_order(&cold, |&f| analyze_function(&program, f, image));
            for (&f, fa) in cold.iter().zip(results) {
                phases_map.insert(
                    f,
                    FnPhase::Fresh {
                        key: keys.get(&f).copied(),
                        fa,
                    },
                );
            }
            value_time += tv.elapsed();
            value_work += work;
            trace.resolve_rounds = round + 1;

            if program.unresolved_sites().is_empty() {
                break;
            }
            let mut grew = false;
            for phase in phases_map.values() {
                let (calls, jumps) = phase.hints();
                for (at, targets) in calls {
                    if resolver.call_targets.get(&at) != Some(&targets) {
                        resolver.add_call_targets(at, targets);
                        grew = true;
                    }
                }
                for (at, targets) in jumps {
                    if resolver.jump_targets.get(&at) != Some(&targets) {
                        resolver.add_jump_targets(at, targets);
                        grew = true;
                    }
                }
            }
            // Never reconstruct on the final round: every phase below
            // reads the per-function phases, which must stay in sync with
            // `program` (a new reconstruction could contain newly
            // reachable functions that were never analyzed).
            if !grew || round + 1 == max_rounds {
                break;
            }
            program = reconstruct(image, &resolver)?;
        }
        trace.unresolved_final = program.unresolved_sites().len();
        trace.functions = program.functions.len();
        trace.blocks = program.total_blocks();
        trace.edges = program.functions.values().map(|c| c.edges().len()).sum();
        trace.phase_times[1] = t1.elapsed().checked_sub(value_time).unwrap_or_default();
        trace.phase_work_times[1] = trace.phase_times[1];
        trace.phase_times[2] = value_time;
        trace.phase_work_times[2] = value_work;

        // --- Warm-unit preparation and validation ---------------------
        // Every cached artifact is validated against the re-derived
        // CFG/forest (the peeled pair, under unrolling) *before* anything
        // downstream reads it. A failure — a corrupted artifact that
        // still decoded, or a peel decision that no longer reproduces —
        // downgrades the function to a fresh analysis here, so the front
        // matter, guideline report, and trace never see stale data, and
        // the recomputed artifact later overwrites the bad file.
        //
        // The context-sensitive pipeline (`context_depth ≥ 1`) replays
        // only the front matter from artifacts — bounds and block times
        // are per *(function, context)* and recomputed each run — so the
        // structural replay below is skipped there.
        let mut warm_prepared: BTreeMap<Addr, (Unit, BlockTimes)> = BTreeMap::new();
        let mut warm_analyzed_cfgs: BTreeMap<Addr, Cfg> = BTreeMap::new();
        let mut downgrade: Vec<Addr> = Vec::new();
        for (&f, phase) in &phases_map {
            if self.config.context_depth > 0 {
                break;
            }
            let FnPhase::Warm { key, artifact } = phase else {
                continue;
            };
            // The artifact's block times were derived against a specific
            // abstract entry pipe (drained for the task entry, unknown
            // for callees); replay only when the recorded digest matches
            // what this run would use. The config fingerprint already
            // forks the key space on the flag itself, but the digest also
            // covers the entry/callee asymmetry the function key cannot
            // see.
            if artifact.pipeline_digest != self.pipeline_entry_digest(f == program.entry) {
                downgrade.push(f);
                continue;
            }
            let orig = program.cfg(f).expect("reconstructed");
            let analyzed = if self.config.unrolling && artifact.peeled {
                let dom = Dominators::compute(orig);
                let forest = LoopForest::compute(orig, &dom);
                // Pure, deterministic CFG surgery — no fixpoint re-run.
                let (peeled, _skipped) = wcet_cfg::unroll::peel_all(orig, &forest);
                warm_analyzed_cfgs.insert(f, peeled.clone());
                peeled
            } else {
                orig.clone()
            };
            let dom = Dominators::compute(&analyzed);
            let forest = LoopForest::compute(&analyzed, &dom);
            match replay_unit(*key, artifact, analyzed, forest) {
                Some(prepared) => {
                    warm_prepared.insert(f, prepared);
                }
                None => downgrade.push(f),
            }
        }
        for f in downgrade {
            let key = match &phases_map[&f] {
                FnPhase::Warm { key, .. } => *key,
                _ => unreachable!("downgrades come from warm phases"),
            };
            warm_analyzed_cfgs.remove(&f);
            let fa = analyze_function(&program, f, image);
            phases_map.insert(f, FnPhase::Fresh { key: Some(key), fa });
        }

        // --- Front matter: hints, findings, loop statistics -----------
        // Captured per function before virtual unrolling replaces fresh
        // analyses with their peeled copies; cached functions replay it
        // from their artifacts.
        let mut front: BTreeMap<Addr, FrontMatter> = BTreeMap::new();
        for (&f, phase) in &phases_map {
            let fm = match phase {
                FnPhase::Fresh { fa, .. } => {
                    let bounds = fa.loop_bounds();
                    let loops_auto = bounds
                        .results()
                        .iter()
                        .filter(|(_, r)| {
                            matches!(
                                r,
                                BoundResult::Bounded {
                                    source: BoundSource::Auto,
                                    ..
                                }
                            )
                        })
                        .count();
                    let (hint_calls, hint_jumps) = if key_ctx.is_some() {
                        let hints = fa.resolver_hints();
                        (
                            hints.call_targets.into_iter().collect(),
                            hints.jump_targets.into_iter().collect(),
                        )
                    } else {
                        (BTreeMap::new(), BTreeMap::new())
                    };
                    FrontMatter {
                        hint_calls,
                        hint_jumps,
                        findings: if self.config.check_guidelines {
                            check_function(fa)
                        } else {
                            Vec::new()
                        },
                        loops_total: fa.forest().len(),
                        loops_auto,
                    }
                }
                FnPhase::Warm { artifact, .. } => FrontMatter {
                    hint_calls: artifact.hint_calls.clone(),
                    hint_jumps: artifact.hint_jumps.clone(),
                    findings: artifact.findings.clone(),
                    loops_total: artifact.loops_total,
                    loops_auto: artifact.loops_auto,
                },
            };
            trace.loops += fm.loops_total;
            trace.loops_bounded_auto += fm.loops_auto;
            front.insert(f, fm);
        }

        let callgraph = CallGraph::build(&program);

        // --- Guideline checking (report only) -------------------------
        // Per-function findings come from the front matter (fresh or
        // replayed); the image-level rules are recomputed every run. The
        // composition and sort match `check_program` exactly.
        let guideline_report = if self.config.check_guidelines {
            let mut findings: Vec<Finding> = front
                .values()
                .flat_map(|fm| fm.findings.iter().cloned())
                .collect();
            findings.extend(check_image_level(image, &program, &callgraph));
            sort_findings(&mut findings);
            Some(PredictabilityReport::new(findings))
        } else {
            None
        };

        // --- Recursion check ------------------------------------------
        // Recursive functions need a `recursion … depth N` annotation —
        // the design-level knowledge the paper says recursion requires
        // (Section 3.2). Without it the analysis must refuse.
        let unannotated: Vec<Addr> = callgraph
            .recursive_functions()
            .into_iter()
            .filter(|&f| self.config.annotations.recursion_depth(f).is_none())
            .collect();
        if !unannotated.is_empty() {
            return Err(AnalyzeError::Recursion {
                functions: unannotated,
            });
        }

        // --- Context-sensitive pipeline (depth ≥ 1) --------------------
        // From here the two pipelines diverge: the classic path below
        // schedules one merged unit per function; the VIVU path schedules
        // one unit per (function, call-string context), propagating entry
        // states caller → callee. Depth 0 must stay byte-identical to the
        // pre-context analyzer, so its code path is untouched.
        if self.config.context_depth > 0 {
            return self.analyze_contexts(CtxPipeline {
                image,
                program,
                callgraph,
                phases_map,
                front,
                guideline_report,
                trace,
                cache,
                key_ctx,
                stats,
                pool,
            });
        }

        // --- Virtual unrolling (optional context expansion) -------------
        // Guideline checking above used the un-peeled CFGs (peeled copies
        // would double-report findings); timing and path analysis can use
        // the expanded CFGs for per-context cache precision.
        let mut analyzed_cfgs: BTreeMap<Addr, wcet_cfg::Cfg> = BTreeMap::new();
        let mut peeled_flags: BTreeMap<Addr, bool> = BTreeMap::new();
        if self.config.unrolling {
            let t_unroll = Instant::now();
            let summaries =
                std::sync::Arc::new(wcet_analysis::valueanalysis::compute_summaries(&program));
            let entry_state = wcet_analysis::valueanalysis::entry_state_from_image(image);
            let fresh_fns: Vec<Addr> = phases_map
                .iter()
                .filter(|(_, p)| matches!(p, FnPhase::Fresh { .. }))
                .map(|(&f, _)| f)
                .collect();
            // Peel-and-reanalyze is per-function independent: fan out flat.
            let (peeled, unroll_work) = pool.map_in_order(&fresh_fns, |&f| {
                let FnPhase::Fresh { fa, .. } = &phases_map[&f] else {
                    unreachable!("fresh_fns holds fresh phases only")
                };
                let (peeled, _skipped) = wcet_cfg::unroll::peel_all(fa.cfg(), fa.forest());
                if peeled.block_count() != fa.cfg().block_count() {
                    Some(wcet_analysis::valueanalysis::analyze_cfg(
                        peeled,
                        f,
                        entry_state.clone(),
                        wcet_analysis::valueanalysis::AnalysisConfig::default(),
                        summaries.clone(),
                    ))
                } else {
                    None
                }
            });
            for (f, fa2) in fresh_fns.into_iter().zip(peeled) {
                if let Some(fa2) = fa2 {
                    analyzed_cfgs.insert(f, fa2.cfg().clone());
                    peeled_flags.insert(f, true);
                    let key = match phases_map.get(&f) {
                        Some(FnPhase::Fresh { key, .. }) => *key,
                        _ => None,
                    };
                    phases_map.insert(f, FnPhase::Fresh { key, fa: fa2 });
                }
            }
            // Cached functions whose artifacts recorded a peel: the
            // validated peeled CFGs were derived above.
            for (&f, peeled) in &warm_analyzed_cfgs {
                analyzed_cfgs.insert(f, peeled.clone());
                peeled_flags.insert(f, true);
            }
            // Context expansion re-runs the value analysis, so its cost
            // belongs to the loop/value phase.
            trace.phase_times[2] += t_unroll.elapsed();
            trace.phase_work_times[2] += unroll_work;
        }

        // --- Phase 4: units + cache/pipeline analysis ------------------
        // Each function becomes a self-contained unit: the analyzed CFG
        // and forest, automatic loop bounds, and block times — fresh from
        // the analysis, or replayed from the validated artifact.
        let t3 = Instant::now();
        let overrides = self.config.annotations.access_overrides();
        let mut units: BTreeMap<Addr, Unit> = BTreeMap::new();
        let mut warm_times: BTreeMap<Addr, BlockTimes> = BTreeMap::new();
        let mut artifacts: BTreeMap<Addr, FunctionArtifact> = BTreeMap::new();
        for (f, (unit, times_f)) in warm_prepared {
            if let Some(FnPhase::Warm { artifact, .. }) = phases_map.get(&f) {
                artifacts.insert(f, artifact.clone());
            }
            warm_times.insert(f, times_f);
            units.insert(f, unit);
        }
        let fresh_fns: Vec<Addr> = phases_map
            .iter()
            .filter(|(&f, _)| !units.contains_key(&f))
            .map(|(&f, _)| f)
            .collect();
        let mut fresh_fas: BTreeMap<Addr, (Option<u64>, FunctionAnalysis)> = BTreeMap::new();
        for &f in &fresh_fns {
            let Some(FnPhase::Fresh { key, fa }) = phases_map.remove(&f) else {
                unreachable!("warm phases were validated (or downgraded) above")
            };
            fresh_fas.insert(f, (key, fa));
        }
        let items: Vec<(&Addr, &(Option<u64>, FunctionAnalysis))> = fresh_fas.iter().collect();
        let (timed, cache_work) = pool.map_in_order(&items, |&(&f, entry)| {
            let fa = &entry.1;
            let machine = &self.config.machine;
            // The flat pipeline does not track caller cache states, so a
            // callee's fixpoint must start from the *unknown* ACS: the
            // cold default proves absence for every line and classifies
            // entry fetches always-miss, inflating the BCET whenever the
            // caller's own fetches already warmed a shared line. Only the
            // task entry genuinely starts on the cold machine.
            let is_entry = f == program.entry;
            let icache = machine.icache.as_ref().map(|cc| {
                let unknown = (!is_entry).then(|| CacheStates::unknown(cc));
                CacheAnalysis::instruction_with(
                    fa.cfg(),
                    cc,
                    &machine.memmap,
                    &CacheCtx {
                        entry: unknown.as_ref(),
                        ..CacheCtx::default()
                    },
                )
                .analysis
            });
            let accesses = fa.access_values();
            let dcache = machine.dcache.as_ref().map(|cc| {
                let unknown = (!is_entry).then(|| CacheStates::unknown(cc));
                CacheAnalysis::data_with(
                    fa.cfg(),
                    cc,
                    &machine.memmap,
                    &accesses,
                    &CacheCtx {
                        entry: unknown.as_ref(),
                        ..CacheCtx::default()
                    },
                )
                .analysis
            });
            let block_times = if self.config.pipeline {
                // The abstract pipe mirrors the ACS rule: only the task
                // entry genuinely starts drained; callees may inherit
                // any pipe occupancy from their callers.
                let entry_pipe = (!is_entry).then(|| PipelineStates::unknown(machine));
                pipeline::analyze(
                    fa,
                    machine,
                    &overrides,
                    icache.as_ref(),
                    dcache.as_ref(),
                    entry_pipe.as_ref(),
                )
                .times
            } else {
                BlockTimes::compute_from_parts(
                    fa,
                    machine,
                    &overrides,
                    icache.as_ref(),
                    dcache.as_ref(),
                )
            };
            let cache_summary = icache.as_ref().map(CacheAnalysis::summary);
            (block_times, cache_summary)
        });
        let mut times: BTreeMap<Addr, BlockTimes> = warm_times;
        let mut fresh_summaries: BTreeMap<Addr, Option<(usize, usize, usize)>> = BTreeMap::new();
        for ((&f, _), (block_times, cache_summary)) in items.iter().zip(timed) {
            times.insert(f, block_times);
            fresh_summaries.insert(f, cache_summary);
        }
        for (f, (key, fa)) in fresh_fas {
            let bounds = fa.loop_bounds();
            units.insert(
                f,
                Unit {
                    key,
                    warm: false,
                    bounds,
                    body: UnitBody::Fresh(fa),
                },
            );
        }
        // The cache-classification counters accumulate over all
        // functions, in address order (the sum is order-independent, but
        // stay deterministic anyway).
        for (&f, unit) in &units {
            let summary = if unit.warm {
                artifacts[&f].cache_summary
            } else {
                fresh_summaries.get(&f).copied().flatten()
            };
            if let Some((h, m, nc)) = summary {
                trace.cache_always_hit += h;
                trace.cache_always_miss += m;
                trace.cache_not_classified += nc;
            }
        }
        if self.config.pipeline {
            // Structural, so warm and cold runs count identically.
            for unit in units.values() {
                trace.pipeline_edges += pipeline::predicted_edge_count(unit.cfg());
            }
        }
        trace.phase_times[3] = t3.elapsed();
        trace.phase_work_times[3] = cache_work;

        // --- Dirtiness propagation ------------------------------------
        // Changed functions (content-key misses) plus their transitive
        // callers: exactly the set whose IPET solutions may differ from
        // the cache. Clean functions are guaranteed full-key hits below —
        // the property tests pin that invariant.
        let dirty: BTreeSet<Addr> = if key_ctx.is_some() {
            let changed: BTreeSet<Addr> = units
                .iter()
                .filter(|(_, u)| !u.warm)
                .map(|(&f, _)| f)
                .collect();
            let dirty = callgraph.transitive_callers(&changed);
            stats.functions = units.len();
            stats.fn_hits = units.len() - changed.len();
            stats.fn_misses = changed.len();
            stats.dirty = dirty.len();
            dirty
        } else {
            BTreeSet::new()
        };

        // --- Phase 5: path analysis as a bottom-up wavefront -----------
        // The call graph is leveled into groups whose callees all lie in
        // earlier levels; groups within one level share no call edges and
        // solve their IPET systems concurrently. Results merge in
        // function-address order, so the report is identical for any
        // worker count. With a cache, the coordinator first serves
        // `(function, mode, callee costs)`-keyed solutions; only the rest
        // fan out to the solvers.
        let t4 = Instant::now();
        let mut path_work = Duration::ZERO;
        let mut mode_wcet: BTreeMap<Option<String>, u64> = BTreeMap::new();
        let mut global_functions: BTreeMap<Addr, FunctionReport> = BTreeMap::new();

        let mut modes: Vec<Option<String>> = vec![None];
        modes.extend(
            self.config
                .annotations
                .modes()
                .iter()
                .map(|m| Some(m.clone())),
        );

        let levels = callgraph.bottom_up_levels();
        for mode in &modes {
            let mut wcet_costs = CallCosts::new();
            let mut bcet_costs = CallCosts::new();
            let mut per_function: BTreeMap<Addr, FunctionReport> = BTreeMap::new();
            for level in &levels {
                // Coordinator pass: serve cached IPET solutions, decide
                // what still needs solving, and remember where to store
                // fresh solutions.
                let mut served: Vec<Option<GroupOutcome>> = Vec::new();
                served.resize_with(level.len(), || None);
                let mut to_solve: Vec<usize> = Vec::new();
                let mut store_keys: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
                for (gi, group) in level.iter().enumerate() {
                    let cacheable = group.len() == 1
                        && !callgraph.is_recursive(group[0])
                        && units[&group[0]].key.is_some();
                    if !cacheable {
                        to_solve.push(gi);
                        continue;
                    }
                    let f = group[0];
                    let unit = &units[&f];
                    let fn_key = unit.key.expect("checked cacheable");
                    let skey = ipet_struct_key(fn_key, mode.as_deref());
                    let costs = callee_costs(unit.cfg(), &wcet_costs, &bcet_costs);
                    match costs {
                        Some(costs) => {
                            let fkey = ipet_full_key(skey, &costs);
                            // The dirtiness pass is the invalidation rule:
                            // changed functions and their transitive
                            // callers never consult the cache — they
                            // re-solve and overwrite their entry. Clean
                            // functions must hit (their whole input cone
                            // is unchanged).
                            if !dirty.contains(&f) {
                                let store = cache.as_deref_mut().expect("cache active");
                                let hit = store
                                    .lookup_ipet(skey)
                                    .filter(|e| e.full_key == fkey && entry_fits(e, unit.cfg()));
                                if let Some(entry) = hit {
                                    stats.ipet_hits += 1;
                                    let annotation_bounds = if mode.is_none() {
                                        self.annotation_bound_count(unit, mode.as_deref())
                                    } else {
                                        0
                                    };
                                    served[gi] = Some(GroupOutcome {
                                        reports: vec![(
                                            f,
                                            FunctionReport {
                                                wcet: entry.wcet,
                                                bcet: entry.bcet,
                                            },
                                        )],
                                        annotation_bounds,
                                        lp: entry.lp,
                                    });
                                    continue;
                                }
                            }
                            store_keys.insert(gi, (skey, fkey));
                            to_solve.push(gi);
                        }
                        None => to_solve.push(gi), // a callee bound is missing: solve (and error there)
                    }
                }
                let (outcomes, work) = pool.map_in_order(&to_solve, |&gi| {
                    self.analyze_call_group(
                        &level[gi],
                        mode.as_deref(),
                        &units,
                        &times,
                        &callgraph,
                        &wcet_costs,
                        &bcet_costs,
                    )
                });
                path_work += work;
                stats.ipet_solves += to_solve.len();
                for (&gi, outcome) in to_solve.iter().zip(outcomes) {
                    let outcome = outcome?;
                    if let (Some(store), Some(&(skey, fkey))) =
                        (cache.as_deref_mut(), store_keys.get(&gi))
                    {
                        let (f, report) = &outcome.reports[0];
                        debug_assert_eq!(*f, level[gi][0]);
                        store.store_ipet(
                            skey,
                            &IpetEntry {
                                full_key: fkey,
                                wcet: report.wcet.clone(),
                                bcet: report.bcet.clone(),
                                lp: outcome.lp,
                            },
                        );
                    }
                    served[gi] = Some(outcome);
                }
                for outcome in served.into_iter() {
                    let outcome = outcome.expect("every group served or solved");
                    if mode.is_none() {
                        trace.loops_bounded_annot += outcome.annotation_bounds;
                    }
                    trace.lp_pivots += outcome.lp.pivots;
                    trace.lp_refactorizations += outcome.lp.refactorizations;
                    trace.lp_presolve_removed += outcome.lp.presolve_removed;
                    for (f, report) in outcome.reports {
                        wcet_costs.insert(f, report.wcet.wcet_cycles);
                        bcet_costs.insert(f, report.bcet.wcet_cycles);
                        per_function.insert(f, report);
                    }
                }
            }
            let entry_report = &per_function[&program.entry];
            mode_wcet.insert(mode.clone(), entry_report.wcet.wcet_cycles);
            if mode.is_none() {
                global_functions = per_function;
            }
        }
        trace.phase_times[4] = t4.elapsed();
        trace.phase_work_times[4] = path_work;

        // --- Store fresh artifacts ------------------------------------
        if let (Some(ctx), Some(store)) = (&key_ctx, cache) {
            // Only the rare repair path (fresh unit without a key, i.e. a
            // corrupted artifact) needs the summaries again.
            let mut summaries = None;
            for (&f, unit) in &units {
                if unit.warm {
                    continue;
                }
                // Key over the *reconstructed* CFG (what the next run will
                // hash during its rounds), not the peeled copy.
                let key = unit.key.unwrap_or_else(|| {
                    let summaries = summaries.get_or_insert_with(|| {
                        wcet_analysis::valueanalysis::compute_summaries(&program)
                    });
                    ctx.function_key(program.cfg(f).expect("reconstructed"), summaries)
                });
                let fm = &front[&f];
                let times_f = &times[&f];
                let n = unit.cfg().block_count();
                let artifact = FunctionArtifact {
                    hint_calls: fm.hint_calls.clone(),
                    hint_jumps: fm.hint_jumps.clone(),
                    findings: fm.findings.clone(),
                    loops_total: fm.loops_total,
                    loops_auto: fm.loops_auto,
                    peeled: peeled_flags.get(&f).copied().unwrap_or(false),
                    bounds: unit
                        .bounds
                        .results()
                        .iter()
                        .map(|(id, r)| (id.0, *r))
                        .collect(),
                    times_wcet: (0..n).map(|b| times_f.wcet(wcet_cfg::BlockId(b))).collect(),
                    times_bcet: (0..n).map(|b| times_f.bcet(wcet_cfg::BlockId(b))).collect(),
                    cache_summary: fresh_summaries.get(&f).copied().flatten(),
                    pipeline_digest: self.pipeline_entry_digest(f == program.entry),
                };
                store.store_fn(key, &artifact);
            }
        }

        // ILP size statistics for the entry function (recomputed cheaply,
        // over the CFG the ILP was actually built from).
        let entry_cfg = units[&program.entry].cfg();
        trace.ilp_vars = entry_cfg.edges().len() + entry_cfg.block_count() + 1;
        trace.ilp_constraints = entry_cfg.block_count() * 2;

        let entry_report = &global_functions[&program.entry];
        Ok(AnalysisReport {
            wcet_cycles: entry_report.wcet.wcet_cycles,
            bcet_cycles: entry_report.bcet.wcet_cycles,
            worst_path: entry_report.wcet.worst_path.clone(),
            analyzed_cfgs,
            functions: global_functions,
            mode_wcet,
            guidelines: guideline_report,
            trace,
            program,
            incr: key_ctx.map(|_| stats),
        })
    }

    /// Replays the deterministic annotation pass to count
    /// annotation-sourced bounds for a cache-served function (the trace
    /// statistic the solver path counts inline).
    fn annotation_bound_count(&self, unit: &Unit, mode: Option<&str>) -> usize {
        let mut bounds = unit.bounds.clone();
        self.config
            .annotations
            .apply_loop_bounds(unit.cfg(), unit.forest(), &mut bounds, mode);
        bounds
            .results()
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r,
                    BoundResult::Bounded {
                        source: BoundSource::Annotation,
                        ..
                    }
                )
            })
            .count()
    }

    /// Path-analyzes one wavefront group for `mode`: a single function,
    /// or a recursive SCC processed as a unit (its members need each
    /// other's per-activation body costs). Callee costs from every
    /// earlier level are complete in `wcet_costs`/`bcet_costs`; same-level
    /// groups share no call edges, so nothing else is needed.
    #[allow(clippy::too_many_arguments)] // phase state, plumbed not stored
    fn analyze_call_group(
        &self,
        group: &[Addr],
        mode: Option<&str>,
        units: &BTreeMap<Addr, Unit>,
        times: &BTreeMap<Addr, BlockTimes>,
        callgraph: &CallGraph,
        wcet_costs: &CallCosts,
        bcet_costs: &CallCosts,
    ) -> Result<GroupOutcome, AnalyzeError> {
        let mut reports: Vec<(Addr, FunctionReport)> = Vec::with_capacity(group.len());
        let mut annotation_bounds = 0usize;
        let mut lp = LpStats::default();
        for &f in group {
            let unit = &units[&f];
            let (cfg, forest) = (unit.cfg(), unit.forest());
            let mut bounds = unit.bounds.clone();
            self.config
                .annotations
                .apply_loop_bounds(cfg, forest, &mut bounds, mode);
            if mode.is_none() {
                for (_, r) in bounds.results() {
                    if matches!(
                        r,
                        BoundResult::Bounded {
                            source: BoundSource::Annotation,
                            ..
                        }
                    ) {
                        annotation_bounds += 1;
                    }
                }
            }
            let facts = self.config.annotations.flow_facts(cfg, mode);
            let ft = &times[&f];
            // Static branch-prediction penalties per CFG edge — a pure
            // function of the CFG and the timing model, so cached IPET
            // solutions stay valid (the config fingerprint forks the key
            // space on the pipeline flag).
            let penalties = if self.config.pipeline {
                pipeline::branch_penalties(cfg, &self.config.machine.timing)
            } else {
                BranchPenalties::default()
            };

            // Recursive cycles: compute per-activation body costs with
            // the cycle's internal calls priced at zero, then scale by
            // the annotated depth. Each activation runs at most once
            // per depth level, so depth × Σ(body costs over the cycle)
            // bounds the whole recursion. Only this path needs (and
            // mutates) private cost maps — non-recursive groups are
            // always singletons whose callees sit in earlier levels, so
            // they borrow the level-shared maps clone-free.
            let recursive = callgraph.is_recursive(f);
            let (wcet, bcet) = if recursive {
                let (mut w_costs, mut b_costs) = (wcet_costs.clone(), bcet_costs.clone());
                for member in callgraph.scc_members(f) {
                    w_costs.insert(member, 0);
                    b_costs.insert(member, 0);
                }
                (
                    ipet::wcet_full(
                        cfg,
                        forest,
                        ft,
                        &bounds,
                        &facts,
                        &w_costs,
                        &penalties.wcet,
                        &mut lp,
                    )
                    .map_err(|error| AnalyzeError::Path { function: f, error })?,
                    ipet::bcet_full(
                        cfg,
                        forest,
                        ft,
                        &bounds,
                        &facts,
                        &b_costs,
                        &penalties.bcet,
                        &mut lp,
                    )
                    .map_err(|error| AnalyzeError::Path { function: f, error })?,
                )
            } else {
                (
                    ipet::wcet_full(
                        cfg,
                        forest,
                        ft,
                        &bounds,
                        &facts,
                        wcet_costs,
                        &penalties.wcet,
                        &mut lp,
                    )
                    .map_err(|error| AnalyzeError::Path { function: f, error })?,
                    ipet::bcet_full(
                        cfg,
                        forest,
                        ft,
                        &bounds,
                        &facts,
                        bcet_costs,
                        &penalties.bcet,
                        &mut lp,
                    )
                    .map_err(|error| AnalyzeError::Path { function: f, error })?,
                )
            };
            reports.push((f, FunctionReport { wcet, bcet }));
        }
        // Scale recursive members by depth × Σ(per-activation body costs
        // over the cycle), from a snapshot of the *raw* per-activation
        // costs. Scaling used to happen inside the member loop, which
        // read already-scaled siblings (compounding the factor, order-
        // dependently) and substituted a member's own cost for siblings
        // not yet solved (undercutting the first member's bound in
        // asymmetric cycles) — both wrong; the group holds the whole SCC,
        // so every member's raw cost is available here.
        let raw: BTreeMap<Addr, u64> = reports
            .iter()
            .map(|(f, r)| (*f, r.wcet.wcet_cycles))
            .collect();
        for (f, report) in &mut reports {
            if !callgraph.is_recursive(*f) {
                continue;
            }
            let depth = self
                .config
                .annotations
                .recursion_depth(*f)
                .expect("checked above");
            let body_sum: u64 = callgraph.scc_members(*f).iter().map(|m| raw[m]).sum();
            report.wcet.wcet_cycles = depth.saturating_mul(body_sum);
            // One activation is the sound lower bound.
        }
        Ok(GroupOutcome {
            reports,
            annotation_bounds,
            lp,
        })
    }
}

// ---------------------------------------------------------------------
// The context-sensitive (VIVU) pipeline: one unit per (function, ctx)
// ---------------------------------------------------------------------

/// Everything the shared front end hands to the context-sensitive back
/// end: the reconstructed program with its per-function phases, the
/// report sections that are context-oblivious (front matter, guideline
/// findings), and the incremental-cache plumbing.
struct CtxPipeline<'a, 'c> {
    image: &'a Image,
    program: Program,
    callgraph: CallGraph,
    phases_map: BTreeMap<Addr, FnPhase>,
    front: BTreeMap<Addr, FrontMatter>,
    guideline_report: Option<PredictabilityReport>,
    trace: PhaseTrace,
    cache: Option<&'c mut ArtifactCache>,
    key_ctx: Option<KeyContext>,
    stats: IncrStats,
    pool: &'a WorkerPool,
}

/// Coordinator-computed inputs of one *(function, context)* unit: the
/// joined entry states from the producing call edges and their stable
/// digest (the incremental cache key component).
struct CtxInput {
    id: CtxId,
    entry_state: AbstractState,
    icache_entry: Option<CacheStates>,
    dcache_entry: Option<CacheStates>,
    /// The abstract entry pipe (pipeline runs only): joined from the
    /// producing callers' post-call-transfer snapshots.
    pipeline_entry: Option<PipelineStates>,
    digest: u64,
}

/// One analyzed *(function, context)* unit: the full per-context value
/// analysis, loop bounds, block times, and the caller-side propagation
/// hooks (pre-call value states and ACS pairs per call site).
struct CtxUnit {
    fa: FunctionAnalysis,
    bounds: LoopBounds,
    times: BlockTimes,
    /// Instruction-cache classification counts, as
    /// `(hit, miss, first_miss, not_classified)`.
    cache_summary: Option<(usize, usize, usize, usize)>,
    digest: u64,
    peeled: bool,
    pre_call: BTreeMap<Addr, AbstractState>,
    icache_calls: Option<BTreeMap<Addr, CacheStates>>,
    dcache_calls: Option<BTreeMap<Addr, CacheStates>>,
    /// Per-call-site abstract pipe entering each callee (pipeline runs
    /// only), the pipeline analogue of `icache_calls`.
    pipeline_calls: Option<BTreeMap<Addr, PipelineStates>>,
}

/// One schedulable path-analysis item of the context pipeline.
enum CtxGroup {
    /// A single non-recursive context.
    Single(CtxId),
    /// A recursive SCC, processed jointly (each member has exactly one,
    /// merged, context).
    Scc(Vec<Addr>),
}

/// What one context group's path analysis produced.
struct CtxOutcome {
    reports: Vec<(CtxId, FunctionReport)>,
    /// LP solver effort over the group's solves (replayed from the cache
    /// on a hit, so warm and cold traces match).
    lp: LpStats,
}

/// One function's call sites priced with the joined transitive
/// footprints of their possible callees, per configured cache. Keys are
/// call-instruction addresses (virtual unrolling duplicates sites with
/// identical addresses, so peeled copies resolve too). Every resolved
/// site is present; an unresolvable one carries the all-`Any` footprint,
/// which the cache analysis treats exactly like the opaque clobber.
#[derive(Default)]
struct SiteFootprints {
    icache: BTreeMap<Addr, CacheFootprint>,
    dcache: BTreeMap<Addr, CacheFootprint>,
}

/// Unions `other` into `acc`, per configured cache.
fn union_footprint_artifacts(acc: &mut FootprintArtifact, other: &FootprintArtifact) {
    if let (Some(a), Some(b)) = (&mut acc.icache, &other.icache) {
        a.union(b);
    }
    if let (Some(a), Some(b)) = (&mut acc.dcache, &other.dcache) {
        a.union(b);
    }
}

impl WcetAnalyzer {
    /// The context-sensitive pipeline behind [`Self::analyze`] when
    /// `context_depth ≥ 1`: enumerates call-string contexts, runs the
    /// value and cache/pipeline analyses per *(function, context)* unit
    /// top-down (callers first, so entry states are ready), and solves
    /// one IPET system per unit bottom-up with per-call-site callee
    /// costs. Reports merge per function by max (WCET) / min (BCET);
    /// the task headline numbers come from the entry function's root
    /// context.
    fn analyze_contexts(&self, p: CtxPipeline<'_, '_>) -> Result<AnalysisReport, AnalyzeError> {
        let CtxPipeline {
            image,
            program,
            callgraph,
            phases_map,
            front,
            guideline_report,
            mut trace,
            mut cache,
            key_ctx,
            mut stats,
            pool,
        } = p;
        let contexts = callgraph.enumerate_contexts(
            program.functions.keys(),
            program.entry,
            self.config.context_depth,
        );
        let summaries =
            std::sync::Arc::new(wcet_analysis::valueanalysis::compute_summaries(&program));
        let base_entry = wcet_analysis::valueanalysis::entry_state_from_image(image);
        let overrides = self.config.annotations.access_overrides();
        let levels = callgraph.bottom_up_levels();
        let fn_keys: BTreeMap<Addr, Option<u64>> = phases_map
            .iter()
            .map(|(&f, phase)| {
                let key = match phase {
                    FnPhase::Fresh { key, .. } => *key,
                    FnPhase::Warm { key, .. } => Some(*key),
                };
                (f, key)
            })
            .collect();

        // --- Footprint summaries (persistence runs only) ---------------
        // Bottom-up over the call graph, *before* the top-down cache
        // wavefront: every call site is priced with the joined transitive
        // footprint of its possible callees, so the per-context cache
        // analysis ages the caller's ACS instead of clobbering it. Warm
        // functions replay their own-footprints from the artifact cache
        // (they have no fresh value analysis to derive them from).
        let footprints: Option<BTreeMap<Addr, SiteFootprints>> = (self.config.persistence
            && (self.config.machine.icache.is_some() || self.config.machine.dcache.is_some()))
        .then(|| {
            self.compute_footprints(
                &program,
                &callgraph,
                &phases_map,
                &fn_keys,
                image,
                cache.as_deref_mut(),
            )
        });

        // --- Phases 3–4 per unit: the top-down wavefront ---------------
        // Reversing the bottom-up levels puts every caller context in an
        // earlier level than the contexts it produces, so entry states
        // join over already-analyzed units. Units within one level share
        // no call edges and fan out in parallel; merges land in ctx-id
        // order, so the report is thread-count independent.
        let t3 = Instant::now();
        let mut ctx_work = Duration::ZERO;
        let mut units: BTreeMap<CtxId, CtxUnit> = BTreeMap::new();
        let mut analyzed_cfgs: BTreeMap<Addr, Cfg> = BTreeMap::new();
        for level in levels.iter().rev() {
            let ids: Vec<CtxId> = level
                .iter()
                .flatten()
                .flat_map(|&f| contexts.ctxs_of(f).iter().copied())
                .collect();
            let inputs: Vec<CtxInput> = ids
                .iter()
                .map(|&id| {
                    ctx_entry_input(
                        id,
                        &contexts,
                        &callgraph,
                        &units,
                        &base_entry,
                        &self.config.machine,
                        program.entry,
                        self.config.pipeline,
                    )
                })
                .collect();
            let (results, work) = pool.map_in_order(&inputs, |input| {
                self.analyze_ctx_unit(
                    input,
                    &contexts,
                    &program,
                    &summaries,
                    &overrides,
                    footprints.as_ref(),
                )
            });
            ctx_work += work;
            for (input, unit) in inputs.into_iter().zip(results) {
                let f = contexts.info(input.id).function;
                if unit.peeled && !analyzed_cfgs.contains_key(&f) {
                    // Peeling is pure CFG surgery: every context of `f`
                    // derives the same expanded CFG.
                    analyzed_cfgs.insert(f, unit.fa.cfg().clone());
                }
                units.insert(input.id, unit);
            }
        }
        for unit in units.values() {
            if let Some((h, m, fm, nc)) = unit.cache_summary {
                trace.cache_always_hit += h;
                trace.cache_always_miss += m;
                trace.cache_first_miss += fm;
                trace.cache_not_classified += nc;
            }
        }
        if self.config.pipeline {
            for unit in units.values() {
                trace.pipeline_edges += pipeline::predicted_edge_count(unit.fa.cfg());
            }
        }
        trace.phase_times[3] = t3.elapsed();
        trace.phase_work_times[3] = ctx_work;

        // --- Dirtiness propagation (function-level, as at depth 0) -----
        let dirty: BTreeSet<Addr> = if key_ctx.is_some() {
            let changed: BTreeSet<Addr> = phases_map
                .iter()
                .filter(|(_, phase)| matches!(phase, FnPhase::Fresh { .. }))
                .map(|(&f, _)| f)
                .collect();
            let dirty = callgraph.transitive_callers(&changed);
            stats.functions = phases_map.len();
            stats.fn_hits = phases_map.len() - changed.len();
            stats.fn_misses = changed.len();
            stats.dirty = dirty.len();
            dirty
        } else {
            BTreeSet::new()
        };

        // Annotation-sourced bound statistic: per function (not per
        // context — the count describes the code), over the first
        // context's analyzed forest, mirroring the depth-0 semantics.
        for &f in program.functions.keys() {
            let unit = &units[&contexts.ctxs_of(f)[0]];
            let mut bounds = unit.bounds.clone();
            self.config.annotations.apply_loop_bounds(
                unit.fa.cfg(),
                unit.fa.forest(),
                &mut bounds,
                None,
            );
            trace.loops_bounded_annot += bounds
                .results()
                .iter()
                .filter(|(_, r)| {
                    matches!(
                        r,
                        BoundResult::Bounded {
                            source: BoundSource::Annotation,
                            ..
                        }
                    )
                })
                .count();
        }

        // --- Phase 5: per-context path analysis, bottom-up -------------
        let t4 = Instant::now();
        let mut path_work = Duration::ZERO;
        let mut mode_wcet: BTreeMap<Option<String>, u64> = BTreeMap::new();
        let mut global_functions: BTreeMap<Addr, FunctionReport> = BTreeMap::new();
        let mut root_report: Option<FunctionReport> = None;
        // The entry function's *root* context (empty call string — id
        // order puts it first): the task activation the headline bounds
        // describe.
        let root_ctx = contexts.ctxs_of(program.entry)[0];

        let mut modes: Vec<Option<String>> = vec![None];
        modes.extend(
            self.config
                .annotations
                .modes()
                .iter()
                .map(|m| Some(m.clone())),
        );

        for mode in &modes {
            let mut wcet_costs: BTreeMap<CtxId, u64> = BTreeMap::new();
            let mut bcet_costs: BTreeMap<CtxId, u64> = BTreeMap::new();
            let mut per_ctx: BTreeMap<CtxId, FunctionReport> = BTreeMap::new();
            for level in &levels {
                let mut groups: Vec<CtxGroup> = Vec::new();
                for group in level {
                    if group.len() == 1 && !callgraph.is_recursive(group[0]) {
                        groups.extend(
                            contexts
                                .ctxs_of(group[0])
                                .iter()
                                .map(|&c| CtxGroup::Single(c)),
                        );
                    } else {
                        groups.push(CtxGroup::Scc(group.clone()));
                    }
                }
                // Coordinator pass: price every Single context's call
                // sites once (the solvers reuse the vector) and serve
                // cached per-context solutions.
                let mut served: Vec<Option<CtxOutcome>> = Vec::new();
                served.resize_with(groups.len(), || None);
                let mut to_solve: Vec<usize> = Vec::new();
                let mut store_keys: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
                let mut priced: BTreeMap<usize, Vec<(Addr, u64, u64)>> = BTreeMap::new();
                for (gi, group) in groups.iter().enumerate() {
                    let CtxGroup::Single(ctx) = group else {
                        to_solve.push(gi);
                        continue;
                    };
                    let f = contexts.info(*ctx).function;
                    let unit = &units[ctx];
                    if let Some(costs) =
                        ctx_site_costs(unit, *ctx, &contexts, &wcet_costs, &bcet_costs)
                    {
                        priced.insert(gi, costs);
                    }
                    let (Some(fn_key), true) = (fn_keys[&f], cache.is_some()) else {
                        to_solve.push(gi);
                        continue;
                    };
                    let Some(costs) = priced.get(&gi) else {
                        // A callee bound is missing: solve (and error
                        // there).
                        to_solve.push(gi);
                        continue;
                    };
                    let skey = ipet_ctx_struct_key(fn_key, unit.digest, mode.as_deref());
                    let fkey = ipet_site_full_key(skey, costs);
                    if !dirty.contains(&f) {
                        let store = cache.as_deref_mut().expect("cache active");
                        let hit = store
                            .lookup_ipet(skey)
                            .filter(|e| e.full_key == fkey && entry_fits(e, unit.fa.cfg()));
                        if let Some(entry) = hit {
                            stats.ipet_hits += 1;
                            served[gi] = Some(CtxOutcome {
                                reports: vec![(
                                    *ctx,
                                    FunctionReport {
                                        wcet: entry.wcet,
                                        bcet: entry.bcet,
                                    },
                                )],
                                lp: entry.lp,
                            });
                            continue;
                        }
                    }
                    store_keys.insert(gi, (skey, fkey));
                    to_solve.push(gi);
                }
                let (outcomes, work) = pool.map_in_order(&to_solve, |&gi| {
                    self.solve_ctx_group(
                        &groups[gi],
                        priced.get(&gi).map(Vec::as_slice),
                        mode.as_deref(),
                        &units,
                        &contexts,
                        &callgraph,
                        &wcet_costs,
                        &bcet_costs,
                    )
                });
                path_work += work;
                stats.ipet_solves += to_solve.len();
                for (&gi, outcome) in to_solve.iter().zip(outcomes) {
                    let outcome = outcome?;
                    if let (Some(store), Some(&(skey, fkey))) =
                        (cache.as_deref_mut(), store_keys.get(&gi))
                    {
                        let (_, report) = &outcome.reports[0];
                        store.store_ipet(
                            skey,
                            &IpetEntry {
                                full_key: fkey,
                                wcet: report.wcet.clone(),
                                bcet: report.bcet.clone(),
                                lp: outcome.lp,
                            },
                        );
                    }
                    served[gi] = Some(outcome);
                }
                for outcome in served {
                    let outcome = outcome.expect("every group served or solved");
                    trace.lp_pivots += outcome.lp.pivots;
                    trace.lp_refactorizations += outcome.lp.refactorizations;
                    trace.lp_presolve_removed += outcome.lp.presolve_removed;
                    for (ctx, report) in outcome.reports {
                        wcet_costs.insert(ctx, report.wcet.wcet_cycles);
                        bcet_costs.insert(ctx, report.bcet.wcet_cycles);
                        per_ctx.insert(ctx, report);
                    }
                }
            }
            mode_wcet.insert(mode.clone(), per_ctx[&root_ctx].wcet.wcet_cycles);
            if mode.is_none() {
                // Per-function reports merge over contexts: WCET by max,
                // BCET by min — a bound for *any* invocation.
                for &f in program.functions.keys() {
                    let mut merged: Option<FunctionReport> = None;
                    for &ctx in contexts.ctxs_of(f) {
                        let r = &per_ctx[&ctx];
                        merged = Some(match merged {
                            None => r.clone(),
                            Some(mut m) => {
                                if r.wcet.wcet_cycles > m.wcet.wcet_cycles {
                                    m.wcet = r.wcet.clone();
                                }
                                if r.bcet.wcet_cycles < m.bcet.wcet_cycles {
                                    m.bcet = r.bcet.clone();
                                }
                                m
                            }
                        });
                    }
                    global_functions.insert(f, merged.expect("every function has a context"));
                }
                root_report = Some(per_ctx[&root_ctx].clone());
            }
        }
        trace.phase_times[4] = t4.elapsed();
        trace.phase_work_times[4] = path_work;

        // --- Store fresh function artifacts ----------------------------
        // Bounds/times are per-context at depth ≥ 1, so artifacts carry
        // only the context-oblivious front matter (plus the merged-unit
        // loop bounds for completeness); the structural replay path is
        // exclusive to depth 0, whose config fingerprint differs.
        if let (Some(_), Some(store)) = (&key_ctx, cache) {
            for (&f, phase) in &phases_map {
                let FnPhase::Fresh { key, fa } = phase else {
                    continue;
                };
                let key = key.expect("keys are computed for every function under a cache");
                let fm = &front[&f];
                let artifact = FunctionArtifact {
                    hint_calls: fm.hint_calls.clone(),
                    hint_jumps: fm.hint_jumps.clone(),
                    findings: fm.findings.clone(),
                    loops_total: fm.loops_total,
                    loops_auto: fm.loops_auto,
                    peeled: false,
                    bounds: fa
                        .loop_bounds()
                        .results()
                        .iter()
                        .map(|(id, r)| (id.0, *r))
                        .collect(),
                    times_wcet: Vec::new(),
                    times_bcet: Vec::new(),
                    cache_summary: None,
                    pipeline_digest: None,
                };
                store.store_fn(key, &artifact);
            }
        }

        let entry_cfg = units[&root_ctx].fa.cfg();
        trace.ilp_vars = entry_cfg.edges().len() + entry_cfg.block_count() + 1;
        trace.ilp_constraints = entry_cfg.block_count() * 2;

        let root_report = root_report.expect("global mode ran");
        Ok(AnalysisReport {
            wcet_cycles: root_report.wcet.wcet_cycles,
            bcet_cycles: root_report.bcet.wcet_cycles,
            worst_path: root_report.wcet.worst_path.clone(),
            analyzed_cfgs,
            functions: global_functions,
            mode_wcet,
            guidelines: guideline_report,
            trace,
            program,
            incr: key_ctx.map(|_| stats),
        })
    }

    /// A function's *own* cache footprints, from its CFG and abstract
    /// data addresses, for each cache the machine configures.
    fn own_footprints(&self, fa: &FunctionAnalysis) -> FootprintArtifact {
        let machine = &self.config.machine;
        FootprintArtifact {
            icache: machine
                .icache
                .as_ref()
                .map(|cc| footprint::instruction_footprint(fa.cfg(), cc, &machine.memmap)),
            dcache: machine.dcache.as_ref().map(|cc| {
                footprint::data_footprint(fa.cfg(), cc, &machine.memmap, &fa.access_values())
            }),
        }
    }

    /// The all-`Any` artifact: a callee about which nothing is known.
    fn unknown_footprints(&self) -> FootprintArtifact {
        let machine = &self.config.machine;
        FootprintArtifact {
            icache: machine.icache.as_ref().map(CacheFootprint::unknown),
            dcache: machine.dcache.as_ref().map(CacheFootprint::unknown),
        }
    }

    /// Does a (possibly replayed) footprint artifact describe exactly the
    /// caches this run configures? A mismatch reads as a cache miss.
    fn footprints_fit(&self, art: &FootprintArtifact) -> bool {
        let machine = &self.config.machine;
        let fits =
            |fp: &Option<CacheFootprint>, cc: &Option<wcet_isa::cache::CacheConfig>| match (fp, cc)
            {
                (Some(fp), Some(cc)) => fp.config() == cc,
                (None, None) => true,
                _ => false,
            };
        fits(&art.icache, &machine.icache) && fits(&art.dcache, &machine.dcache)
    }

    /// Computes the per-caller, per-call-site callee footprints the
    /// persistence analysis prices calls with:
    ///
    /// 1. **own footprints** per function — fresh from each function's
    ///    value analysis, or replayed from the `fp/` artifact cache for
    ///    warm functions (recomputed deterministically when the artifact
    ///    is missing or corrupt, so warm runs stay byte-identical);
    /// 2. **transitive closure** bottom-up over the call graph (a
    ///    recursive SCC unions all of its members); functions with
    ///    unresolved call sites degrade to the all-`Any` footprint;
    /// 3. **per-site joins** over each site's possible callees.
    fn compute_footprints(
        &self,
        program: &Program,
        callgraph: &CallGraph,
        phases_map: &BTreeMap<Addr, FnPhase>,
        fn_keys: &BTreeMap<Addr, Option<u64>>,
        image: &Image,
        mut cache: Option<&mut ArtifactCache>,
    ) -> BTreeMap<Addr, SiteFootprints> {
        // Step 1: own footprints (replayed or fresh).
        let mut own: BTreeMap<Addr, FootprintArtifact> = BTreeMap::new();
        for (&f, phase) in phases_map {
            let key = fn_keys.get(&f).copied().flatten();
            let art = match phase {
                FnPhase::Fresh { fa, .. } => self.own_footprints(fa),
                FnPhase::Warm { .. } => {
                    let replayed = key
                        .and_then(|k| cache.as_deref_mut().and_then(|store| store.lookup_fp(k)))
                        .filter(|art| self.footprints_fit(art));
                    match replayed {
                        Some(art) => art,
                        None => {
                            // No (valid) artifact: re-derive the value
                            // analysis just for the footprint. Slow but
                            // deterministic — identical to a cold run.
                            self.own_footprints(&analyze_function(program, f, image))
                        }
                    }
                }
            };
            if let (Some(store), Some(k)) = (cache.as_deref_mut(), key) {
                store.store_fp(k, &art);
            }
            own.insert(f, art);
        }

        // Step 2: transitive closure, bottom-up (callees before callers;
        // groups within a level share no call edges).
        let mut trans: BTreeMap<Addr, FootprintArtifact> = BTreeMap::new();
        for level in callgraph.bottom_up_levels() {
            for group in level {
                let mut acc = own[&group[0]].clone();
                for &f in group.iter().skip(1) {
                    union_footprint_artifacts(&mut acc, &own[&f]);
                }
                for &f in &group {
                    let cfg = program.cfg(f).expect("reconstructed");
                    if !cfg.unresolved.is_empty() {
                        union_footprint_artifacts(&mut acc, &self.unknown_footprints());
                    }
                    for (_, targets) in cfg.call_sites() {
                        for callee in targets {
                            if group.contains(&callee) {
                                continue; // intra-SCC: already unioned
                            }
                            match trans.get(&callee) {
                                Some(t) => union_footprint_artifacts(&mut acc, t),
                                // A call into something the reconstruction
                                // did not produce: treat as opaque.
                                None => {
                                    union_footprint_artifacts(&mut acc, &self.unknown_footprints());
                                }
                            }
                        }
                    }
                }
                for &f in &group {
                    trans.insert(f, acc.clone());
                }
            }
        }

        // Step 3: per-site joins.
        let mut result: BTreeMap<Addr, SiteFootprints> = BTreeMap::new();
        for &f in program.functions.keys() {
            let cfg = program.cfg(f).expect("reconstructed");
            let mut sites = SiteFootprints::default();
            for (site, targets) in cfg.call_sites() {
                let mut acc: Option<FootprintArtifact> = None;
                let mut complete = !targets.is_empty();
                for callee in targets {
                    match trans.get(&callee) {
                        Some(t) => match &mut acc {
                            Some(a) => union_footprint_artifacts(a, t),
                            None => acc = Some(t.clone()),
                        },
                        None => complete = false,
                    }
                }
                let joined = match (complete, acc) {
                    (true, Some(a)) => a,
                    _ => self.unknown_footprints(),
                };
                if let Some(fp) = joined.icache {
                    sites.icache.insert(site, fp);
                }
                if let Some(fp) = joined.dcache {
                    sites.dcache.insert(site, fp);
                }
            }
            result.insert(f, sites);
        }
        result
    }

    /// Analyzes one *(function, context)* unit: value analysis from the
    /// context's entry state, optional virtual unrolling (re-analyzed
    /// under the same entry state), cache fixpoints seeded with the entry
    /// ACS pair, and block times.
    fn analyze_ctx_unit(
        &self,
        input: &CtxInput,
        contexts: &ContextTable,
        program: &Program,
        summaries: &std::sync::Arc<
            std::collections::HashMap<Addr, wcet_analysis::valueanalysis::FunctionSummary>,
        >,
        overrides: &wcet_micro::blocktime::AccessOverrides,
        footprints: Option<&BTreeMap<Addr, SiteFootprints>>,
    ) -> CtxUnit {
        let machine = &self.config.machine;
        let f = contexts.info(input.id).function;
        let site_fps = footprints.and_then(|m| m.get(&f));
        // Footprints exist exactly when the persistence analysis is on
        // (and a cache is configured).
        let persistence = footprints.is_some();
        let cfg = program.cfg(f).expect("reconstructed").clone();
        let mut fa = wcet_analysis::valueanalysis::analyze_cfg(
            cfg,
            f,
            input.entry_state.clone(),
            AnalysisConfig::default(),
            summaries.clone(),
        );
        let mut peeled_flag = false;
        if self.config.unrolling {
            let (peeled, _skipped) = wcet_cfg::unroll::peel_all(fa.cfg(), fa.forest());
            if peeled.block_count() != fa.cfg().block_count() {
                fa = wcet_analysis::valueanalysis::analyze_cfg(
                    peeled,
                    f,
                    input.entry_state.clone(),
                    AnalysisConfig::default(),
                    summaries.clone(),
                );
                peeled_flag = true;
            }
        }
        let accesses = fa.access_values();
        let (icache, icache_calls) = match &machine.icache {
            Some(cc) => {
                let r = CacheAnalysis::instruction_with(
                    fa.cfg(),
                    cc,
                    &machine.memmap,
                    &CacheCtx {
                        entry: input.icache_entry.as_ref(),
                        call_footprints: site_fps.map(|s| &s.icache),
                        persistence,
                    },
                );
                (Some(r.analysis), Some(r.call_states))
            }
            None => (None, None),
        };
        let (dcache, dcache_calls) = match &machine.dcache {
            Some(cc) => {
                let r = CacheAnalysis::data_with(
                    fa.cfg(),
                    cc,
                    &machine.memmap,
                    &accesses,
                    &CacheCtx {
                        entry: input.dcache_entry.as_ref(),
                        call_footprints: site_fps.map(|s| &s.dcache),
                        persistence,
                    },
                );
                (Some(r.analysis), Some(r.call_states))
            }
            None => (None, None),
        };
        let (times, pipeline_calls) = if self.config.pipeline {
            let r = pipeline::analyze(
                &fa,
                machine,
                overrides,
                icache.as_ref(),
                dcache.as_ref(),
                input.pipeline_entry.as_ref(),
            );
            (r.times, Some(r.call_states))
        } else {
            let times = BlockTimes::compute_from_parts(
                &fa,
                machine,
                overrides,
                icache.as_ref(),
                dcache.as_ref(),
            );
            (times, None)
        };
        let cache_summary = icache.as_ref().map(CacheAnalysis::summary4);
        let bounds = fa.loop_bounds();
        let pre_call = fa.pre_call_states();
        CtxUnit {
            bounds,
            times,
            cache_summary,
            digest: input.digest,
            peeled: peeled_flag,
            pre_call,
            icache_calls,
            dcache_calls,
            pipeline_calls,
            fa,
        }
    }

    /// Path-analyzes one context group for `mode` — the per-context
    /// analogue of the depth-0 `analyze_call_group`.
    #[allow(clippy::too_many_arguments)] // phase state, plumbed not stored
    fn solve_ctx_group(
        &self,
        group: &CtxGroup,
        priced: Option<&[(Addr, u64, u64)]>,
        mode: Option<&str>,
        units: &BTreeMap<CtxId, CtxUnit>,
        contexts: &ContextTable,
        callgraph: &CallGraph,
        wcet_costs: &BTreeMap<CtxId, u64>,
        bcet_costs: &BTreeMap<CtxId, u64>,
    ) -> Result<CtxOutcome, AnalyzeError> {
        let solve_one = |ctx: CtxId,
                         zero_members: &[Addr],
                         priced: Option<&[(Addr, u64, u64)]>,
                         lp: &mut LpStats|
         -> Result<FunctionReport, AnalyzeError> {
            let f = contexts.info(ctx).function;
            let unit = &units[&ctx];
            let (cfg, forest) = (unit.fa.cfg(), unit.fa.forest());
            let mut bounds = unit.bounds.clone();
            self.config
                .annotations
                .apply_loop_bounds(cfg, forest, &mut bounds, mode);
            let facts = self.config.annotations.flow_facts(cfg, mode);
            // The coordinator already priced this context's sites when it
            // probed the cache; reuse its vector instead of re-deriving.
            let (w_costs, b_costs) = match priced {
                Some(costs) => {
                    let (mut w, mut b) = (CallCosts::new(), CallCosts::new());
                    for &(site, sw, sb) in costs {
                        w.insert_site(site, sw);
                        b.insert_site(site, sb);
                    }
                    (w, b)
                }
                None => site_cost_tables(unit, ctx, contexts, wcet_costs, bcet_costs, zero_members),
            };
            let penalties = if self.config.pipeline {
                pipeline::branch_penalties(cfg, &self.config.machine.timing)
            } else {
                BranchPenalties::default()
            };
            let wcet = ipet::wcet_full(
                cfg,
                forest,
                &unit.times,
                &bounds,
                &facts,
                &w_costs,
                &penalties.wcet,
                lp,
            )
            .map_err(|error| AnalyzeError::Path { function: f, error })?;
            let bcet = ipet::bcet_full(
                cfg,
                forest,
                &unit.times,
                &bounds,
                &facts,
                &b_costs,
                &penalties.bcet,
                lp,
            )
            .map_err(|error| AnalyzeError::Path { function: f, error })?;
            Ok(FunctionReport { wcet, bcet })
        };

        let mut lp = LpStats::default();
        match group {
            CtxGroup::Single(ctx) => {
                let report = solve_one(*ctx, &[], priced, &mut lp)?;
                Ok(CtxOutcome {
                    reports: vec![(*ctx, report)],
                    lp,
                })
            }
            CtxGroup::Scc(members) => {
                // Recursive cycles: per-activation body costs with the
                // cycle's internal calls priced at zero, scaled by the
                // annotated depth — exactly the depth-0 rule (members
                // have one merged context each).
                let mut reports: Vec<(CtxId, FunctionReport)> = Vec::with_capacity(members.len());
                for &f in members {
                    let ctx = contexts.ctxs_of(f)[0];
                    let report = solve_one(ctx, members, None, &mut lp)?;
                    reports.push((ctx, report));
                }
                // Scale from a snapshot of the *raw* per-activation
                // costs: mutating `reports` while reading siblings from
                // it would compound the depth factor order-dependently
                // (the depth-0 path had exactly that bug).
                let raw: BTreeMap<Addr, u64> = reports
                    .iter()
                    .map(|(c, r)| (contexts.info(*c).function, r.wcet.wcet_cycles))
                    .collect();
                for (ctx, report) in &mut reports {
                    let f = contexts.info(*ctx).function;
                    let depth = self
                        .config
                        .annotations
                        .recursion_depth(f)
                        .expect("recursion checked before the pipeline split");
                    let body_sum: u64 = callgraph.scc_members(f).iter().map(|m| raw[m]).sum();
                    report.wcet.wcet_cycles = depth.saturating_mul(body_sum);
                    // One activation stays the sound lower bound.
                }
                Ok(CtxOutcome { reports, lp })
            }
        }
    }
}

/// Computes the entry inputs of one context on the coordinator: the join
/// of the producing callers' pre-call value states and ACS pairs, and
/// the digest that keys per-context IPET solutions. Recursive functions
/// and functions without resolved producers fall back to the ⊤ image
/// entry state (today's merged behaviour) — sound for any call path.
/// Their cache entries fall back to [`CacheStates::unknown`], not cold:
/// only `task_entry`'s root context genuinely starts on a cold machine,
/// and a cold fallback would classify entry fetches always-miss — an
/// unsound BCET when a real caller already warmed the lines.
#[allow(clippy::too_many_arguments)] // coordinator state, plumbed not stored
fn ctx_entry_input(
    id: CtxId,
    contexts: &ContextTable,
    callgraph: &CallGraph,
    units: &BTreeMap<CtxId, CtxUnit>,
    base_entry: &AbstractState,
    machine: &MachineConfig,
    task_entry: Addr,
    pipeline_on: bool,
) -> CtxInput {
    let info = contexts.info(id);
    let mut state: Option<AbstractState> = None;
    let mut icache_entry: Option<CacheStates> = None;
    let mut dcache_entry: Option<CacheStates> = None;
    let mut pipe: Option<PipelineStates> = None;
    if !callgraph.is_recursive(info.function) {
        // `preds` is sorted, so the joins fold in a fixed order:
        // deterministic at any thread count.
        for &(caller, site) in &info.preds {
            let Some(caller_unit) = units.get(&caller) else {
                continue;
            };
            if let Some(s) = caller_unit.pre_call.get(&site) {
                state = Some(match state {
                    Some(cur) => cur.join(s),
                    None => s.clone(),
                });
            }
            for (pair, entry) in [
                (&caller_unit.icache_calls, &mut icache_entry),
                (&caller_unit.dcache_calls, &mut dcache_entry),
            ] {
                if let Some(p) = pair.as_ref().and_then(|m| m.get(&site)) {
                    *entry = Some(match entry.take() {
                        Some(cur) => cur.join(p),
                        None => p.clone(),
                    });
                }
            }
            if let Some(p) = caller_unit
                .pipeline_calls
                .as_ref()
                .and_then(|m| m.get(&site))
            {
                pipe = Some(match pipe.take() {
                    Some(cur) => cur.join(p),
                    None => p.clone(),
                });
            }
        }
    }
    let entry_state = state.unwrap_or_else(|| base_entry.clone());
    let genuinely_cold = info.function == task_entry && info.preds.is_empty();
    if !genuinely_cold {
        if icache_entry.is_none() {
            icache_entry = machine.icache.as_ref().map(CacheStates::unknown);
        }
        if dcache_entry.is_none() {
            dcache_entry = machine.dcache.as_ref().map(CacheStates::unknown);
        }
    }
    // The abstract pipe mirrors the ACS rule: drained is *exact* for the
    // task activation; every other context without tracked producers
    // (recursion, unresolved callers) falls back to the unknown pipe.
    let pipeline_entry = pipeline_on.then(|| {
        pipe.unwrap_or_else(|| {
            if genuinely_cold {
                PipelineStates::drained()
            } else {
                PipelineStates::unknown(machine)
            }
        })
    });
    let mut h = StableHasher::new();
    h.write_str("ctx-entry");
    h.write_u64(entry_state.digest());
    for entry in [&icache_entry, &dcache_entry] {
        match entry {
            Some(pair) => {
                h.write_u32(1);
                h.write_u64(pair.digest());
            }
            None => h.write_u32(0),
        }
    }
    match &pipeline_entry {
        Some(p) => {
            h.write_u32(1);
            h.write_u64(p.digest());
        }
        None => h.write_u32(0),
    }
    CtxInput {
        id,
        entry_state,
        icache_entry,
        dcache_entry,
        pipeline_entry,
        digest: h.finish(),
    }
}

/// The per-site cost tables of one context's IPET system: every resolved
/// call site priced with the *(callee, context)* bounds it targets
/// (merged max/min over an indirect site's callee set). `zero_members`
/// are SCC members priced at zero for the recursion rule. Sites with a
/// missing callee bound stay unpriced — the solver surfaces
/// [`PathError::MissingCallee`].
fn site_cost_tables(
    unit: &CtxUnit,
    ctx: CtxId,
    contexts: &ContextTable,
    wcet_costs: &BTreeMap<CtxId, u64>,
    bcet_costs: &BTreeMap<CtxId, u64>,
    zero_members: &[Addr],
) -> (CallCosts, CallCosts) {
    let mut w = CallCosts::new();
    let mut b = CallCosts::new();
    for (site, w_cost, b_cost) in
        site_costs(unit, ctx, contexts, wcet_costs, bcet_costs, zero_members)
    {
        w.insert_site(site, w_cost);
        b.insert_site(site, b_cost);
    }
    (w, b)
}

/// The priced call sites of one context, in site order: `(site, WCET,
/// BCET)`. Sites whose callee contexts lack a bound are omitted.
fn site_costs(
    unit: &CtxUnit,
    ctx: CtxId,
    contexts: &ContextTable,
    wcet_costs: &BTreeMap<CtxId, u64>,
    bcet_costs: &BTreeMap<CtxId, u64>,
    zero_members: &[Addr],
) -> Vec<(Addr, u64, u64)> {
    let mut out: BTreeMap<Addr, (u64, u64)> = BTreeMap::new();
    for (site, targets) in unit.fa.cfg().call_sites() {
        let mut site_w: Option<u64> = None;
        let mut site_b: Option<u64> = None;
        let mut complete = true;
        for callee in targets {
            let (cw, cb) = if zero_members.contains(&callee) {
                (0, 0)
            } else {
                let Some(cctx) = contexts.callee_ctx(ctx, site, callee) else {
                    complete = false;
                    break;
                };
                match (wcet_costs.get(&cctx), bcet_costs.get(&cctx)) {
                    (Some(&cw), Some(&cb)) => (cw, cb),
                    _ => {
                        complete = false;
                        break;
                    }
                }
            };
            site_w = Some(site_w.map_or(cw, |v| v.max(cw)));
            site_b = Some(site_b.map_or(cb, |v| v.min(cb)));
        }
        if let (true, Some(sw), Some(sb)) = (complete, site_w, site_b) {
            // Peeled copies repeat a site with identical targets; the
            // map keeps one deterministic entry.
            out.insert(site, (sw, sb));
        }
    }
    out.into_iter().map(|(s, (w, b))| (s, w, b)).collect()
}

/// The full-key cost vector of one context's IPET system, or `None` when
/// a callee bound is still missing (the solver will error there).
fn ctx_site_costs(
    unit: &CtxUnit,
    ctx: CtxId,
    contexts: &ContextTable,
    wcet_costs: &BTreeMap<CtxId, u64>,
    bcet_costs: &BTreeMap<CtxId, u64>,
) -> Option<Vec<(Addr, u64, u64)>> {
    let priced = site_costs(unit, ctx, contexts, wcet_costs, bcet_costs, &[]);
    let wanted: BTreeSet<Addr> = unit
        .fa
        .cfg()
        .call_sites()
        .into_iter()
        .filter(|(_, targets)| !targets.is_empty())
        .map(|(s, _)| s)
        .collect();
    (priced.len() == wanted.len()).then_some(priced)
}

/// What one wavefront group's path analysis produced.
struct GroupOutcome {
    /// Per-function reports, in the group's processing order.
    reports: Vec<(Addr, FunctionReport)>,
    /// Annotation-sourced loop bounds seen (counted in global mode only).
    annotation_bounds: usize,
    /// LP solver effort over the group's solves (replayed from the cache
    /// on a hit, so warm and cold traces match).
    lp: LpStats,
}

/// `(site, targets)` hint pairs for one kind of indirection.
type TargetPairs = Vec<(Addr, Vec<Addr>)>;

/// One function's state after the resolution rounds: freshly analyzed, or
/// replayed from the artifact cache.
enum FnPhase {
    /// Computed this run (stored into the cache at the end).
    Fresh {
        /// Content key under the current reconstruction (cache runs only).
        key: Option<u64>,
        /// The value analysis result.
        fa: FunctionAnalysis,
    },
    /// Served from the cache.
    Warm {
        /// Content key the artifact was found under.
        key: u64,
        /// The replayed artifact.
        artifact: FunctionArtifact,
    },
}

impl FnPhase {
    /// Indirect-target hints for the resolution loop, as sorted pairs.
    fn hints(&self) -> (TargetPairs, TargetPairs) {
        match self {
            FnPhase::Fresh { fa, .. } => {
                let hints = fa.resolver_hints();
                (
                    hints.call_targets.into_iter().collect(),
                    hints.jump_targets.into_iter().collect(),
                )
            }
            FnPhase::Warm { artifact, .. } => (
                artifact
                    .hint_calls
                    .iter()
                    .map(|(a, t)| (*a, t.clone()))
                    .collect(),
                artifact
                    .hint_jumps
                    .iter()
                    .map(|(a, t)| (*a, t.clone()))
                    .collect(),
            ),
        }
    }
}

/// Per-function results captured before virtual unrolling: resolver
/// hints, guideline findings, and loop statistics (all over the un-peeled
/// CFG).
struct FrontMatter {
    hint_calls: BTreeMap<Addr, Vec<Addr>>,
    hint_jumps: BTreeMap<Addr, Vec<Addr>>,
    findings: Vec<Finding>,
    loops_total: usize,
    loops_auto: usize,
}

/// A function ready for the path phase: the analyzed CFG/forest pair and
/// the automatic loop bounds over it.
struct Unit {
    /// Content key (cache runs only).
    key: Option<u64>,
    /// Whether this unit was replayed from the cache.
    warm: bool,
    /// Automatic loop bounds over the analyzed CFG.
    bounds: LoopBounds,
    body: UnitBody,
}

enum UnitBody {
    Fresh(FunctionAnalysis),
    Warm { cfg: Cfg, forest: LoopForest },
}

impl Unit {
    fn cfg(&self) -> &Cfg {
        match &self.body {
            UnitBody::Fresh(fa) => fa.cfg(),
            UnitBody::Warm { cfg, .. } => cfg,
        }
    }

    fn forest(&self) -> &LoopForest {
        match &self.body {
            UnitBody::Fresh(fa) => fa.forest(),
            UnitBody::Warm { forest, .. } => forest,
        }
    }
}

/// Rebuilds a [`Unit`] and its [`BlockTimes`] from a cached artifact
/// against the re-derived CFG/forest. `None` — a miss — when the artifact
/// does not fit the structures (corruption, or a peel decision that no
/// longer reproduces).
fn replay_unit(
    key: u64,
    artifact: &FunctionArtifact,
    cfg: Cfg,
    forest: LoopForest,
) -> Option<(Unit, BlockTimes)> {
    let times = BlockTimes::from_raw(artifact.times_wcet.clone(), artifact.times_bcet.clone())?;
    if times.len() != cfg.block_count() {
        return None;
    }
    if artifact.bounds.len() != forest.len() {
        return None;
    }
    let results: Vec<(wcet_cfg::loops::LoopId, BoundResult)> = artifact
        .bounds
        .iter()
        .map(|(id, r)| (wcet_cfg::loops::LoopId(*id), *r))
        .collect();
    // Every recorded loop id must exist in the re-derived forest.
    if results.iter().any(|(id, _)| id.0 >= forest.len()) {
        return None;
    }
    let unit = Unit {
        key: Some(key),
        warm: true,
        bounds: LoopBounds::from_results(results),
        body: UnitBody::Warm { cfg, forest },
    };
    Some((unit, times))
}

/// The callee cost vector of one function's IPET system, in callee
/// address order: the inputs the full cache key must cover. `None` when a
/// callee's bound is not available yet (the solver will surface the
/// error).
fn callee_costs(
    cfg: &Cfg,
    wcet_costs: &CallCosts,
    bcet_costs: &CallCosts,
) -> Option<Vec<(Addr, u64, u64)>> {
    let mut callees: BTreeSet<Addr> = BTreeSet::new();
    for (_, targets) in cfg.call_sites() {
        callees.extend(targets);
    }
    callees
        .into_iter()
        .map(|c| {
            let w = wcet_costs.get(&c)?;
            let b = bcet_costs.get(&c)?;
            Some((c, *w, *b))
        })
        .collect()
}

/// Cheap structural validation of a cached IPET solution against the CFG
/// it claims to describe.
fn entry_fits(entry: &IpetEntry, cfg: &Cfg) -> bool {
    let n = cfg.block_count();
    let fits = |r: &WcetResult| {
        r.block_counts.keys().all(|b| b.0 < n) && r.worst_path.iter().all(|b| b.0 < n)
    };
    fits(&entry.wcet) && fits(&entry.bcet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_isa::asm::assemble;
    use wcet_isa::interp::Interpreter;

    fn analyze_src(src: &str) -> AnalysisReport {
        WcetAnalyzer::new()
            .analyze(&assemble(src).unwrap())
            .unwrap()
    }

    #[test]
    fn default_config_equals_new() {
        // Regression: `#[derive(Default)]` produced `max_resolve_rounds =
        // 0` and `check_guidelines = false`, so `..Default::default()`
        // call sites silently skipped indirect-target resolution and
        // guideline checking. Field-by-field, then wholesale.
        let derived = AnalyzerConfig::default();
        let documented = AnalyzerConfig::new();
        assert_eq!(derived.machine, documented.machine);
        assert_eq!(derived.annotations, documented.annotations);
        assert_eq!(derived.max_resolve_rounds, documented.max_resolve_rounds);
        assert_eq!(derived.check_guidelines, documented.check_guidelines);
        assert_eq!(derived.unrolling, documented.unrolling);
        assert_eq!(derived.parallelism, documented.parallelism);
        assert_eq!(derived.context_depth, documented.context_depth);
        assert_eq!(derived.persistence, documented.persistence);
        assert_eq!(derived.pipeline, documented.pipeline);
        assert_eq!(derived, documented);
        // The documented defaults really are in force.
        assert_eq!(derived.max_resolve_rounds, 3);
        assert!(derived.check_guidelines);
        assert_eq!(
            derived.context_depth, 0,
            "depth 0 is the golden-compatible default"
        );
        assert!(
            !derived.persistence,
            "persistence is opt-in (goldens pin the classic classifications)"
        );
        assert!(
            !derived.pipeline,
            "pipeline timing is opt-in (goldens pin the flat block times)"
        );
        // And the derived-Default analyzer is the documented analyzer.
        assert_eq!(
            WcetAnalyzer::default().config(),
            WcetAnalyzer::new().config()
        );
    }

    #[test]
    fn default_config_resolves_and_checks_guidelines() {
        // The observable symptom of the old divergence: a config built
        // with struct-update syntax must still resolve function pointers
        // and attach a guideline report.
        let src = r#"
            main: li  r1, 0x5000
                  lw  r2, 0(r1)
                  callr r2
                  halt
            h1:   li r3, 1
                  ret
        "#;
        let mut image = assemble(src).unwrap();
        let h1 = image.symbol("h1").unwrap();
        image
            .data
            .push(wcet_isa::image::Segment::from_words(Addr(0x5000), &[h1.0]));
        let config = AnalyzerConfig {
            unrolling: false,
            ..Default::default()
        };
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        assert_eq!(report.trace.unresolved_final, 0, "resolution rounds ran");
        assert!(report.guidelines.is_some(), "guideline checking ran");
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        // One recursive SCC + an independent helper + modes: exercises
        // every scheduler path. The rendered report must be identical for
        // any parallelism (timings excluded — they are real clocks).
        let image = assemble(
            r#"
            main: li r1, 3
                  call down
                  call leaf
                  halt
            down: beq r1, r0, base
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call down
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            base: ret
            leaf: li r2, 5
            ll:   subi r2, r2, 1
                  bne r2, r0, ll
                  ret
            "#,
        )
        .unwrap();
        let down = image.symbol("down").unwrap();
        let render = |parallelism: Option<usize>| {
            let mut config = AnalyzerConfig {
                parallelism,
                ..AnalyzerConfig::new()
            };
            config.annotations =
                AnnotationSet::parse(&format!("recursion {down} depth 4;")).unwrap();
            let mut report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            format!("{report:#?}")
        };
        let sequential = render(Some(1));
        assert_eq!(sequential, render(Some(2)));
        assert_eq!(sequential, render(Some(8)));
        assert_eq!(sequential, render(None));
    }

    #[test]
    fn incremental_run_is_byte_identical_and_hits_warm() {
        // Cold run populates the cache; the warm run must reproduce the
        // report byte for byte while serving every function and IPET
        // solution from the cache.
        let dir = std::env::temp_dir().join(format!(
            "wcet-analyzer-incr-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let image = assemble(
            "main: call f\n call g\n halt\nf: li r1, 6\nfl: subi r1, r1, 1\n bne r1, r0, fl\n ret\ng: ret",
        )
        .unwrap();
        let canonical = |mut report: AnalysisReport| {
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            report.incr = None;
            format!("{report:#?}")
        };
        let plain = canonical(WcetAnalyzer::new().analyze(&image).unwrap());

        let mut cache = crate::incr::ArtifactCache::open(&dir).unwrap();
        let cold = WcetAnalyzer::new()
            .analyze_incremental(&image, &mut cache)
            .unwrap();
        let cold_stats = cold.incr.clone().unwrap();
        assert_eq!(cold_stats.fn_hits, 0);
        assert_eq!(cold_stats.fn_misses, 3);
        assert_eq!(cold_stats.dirty, 3, "everything is dirty on a cold cache");
        assert_eq!(
            canonical(cold),
            plain,
            "cold cached run matches cacheless run"
        );

        let warm = WcetAnalyzer::new()
            .analyze_incremental(&image, &mut cache)
            .unwrap();
        let warm_stats = warm.incr.clone().unwrap();
        assert_eq!(warm_stats.fn_hits, 3, "all functions replay from cache");
        assert_eq!(warm_stats.dirty, 0);
        assert_eq!(warm_stats.ipet_solves, 0, "no IPET system re-solved");
        assert_eq!(warm_stats.ipet_hits, 3);
        assert_eq!(canonical(warm), plain, "warm run is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A caller with two sites passing different work sizes to a clamped
    /// callee: the canonical context-sensitivity shape.
    fn two_site_src() -> &'static str {
        r#"
        main: li   r1, 3
              call compute
              li   r1, 40
              call compute
              halt
        compute:
              andi r1, r1, 63
              beq  r1, r0, cdone
        cloop:
              mul  r3, r1, r1
              subi r1, r1, 1
              bne  r1, r0, cloop
        cdone:
              ret
        "#
    }

    fn analyze_depth(image: &wcet_isa::Image, depth: usize) -> AnalysisReport {
        let config = AnalyzerConfig {
            context_depth: depth,
            ..AnalyzerConfig::new()
        };
        WcetAnalyzer::with_config(config).analyze(image).unwrap()
    }

    #[test]
    fn context_depth_one_tightens_and_stays_sound() {
        let image = assemble(two_site_src()).unwrap();
        let merged = analyze_depth(&image, 0);
        let ctx = analyze_depth(&image, 1);
        // Depth 0 prices both sites at the clamp bound (64 iterations);
        // depth 1 prices the cheap site at its actual 3.
        assert!(
            ctx.wcet_cycles < merged.wcet_cycles,
            "context expansion must tighten: {} vs {}",
            ctx.wcet_cycles,
            merged.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(1_000_000).unwrap().cycles;
        for (label, r) in [("merged", &merged), ("ctx", &ctx)] {
            assert!(r.wcet_cycles >= observed, "{label} WCET covers observed");
            assert!(r.bcet_cycles <= observed, "{label} BCET under observed");
        }
        // The per-function report of `compute` merges its contexts by
        // max — still at most (here: strictly below) the merged ⊤
        // analysis, because every context entry is tighter than ⊤.
        let compute = image.symbol("compute").unwrap();
        assert!(
            ctx.functions[&compute].wcet.wcet_cycles <= merged.functions[&compute].wcet.wcet_cycles
        );
        assert!(
            ctx.functions[&compute].bcet.wcet_cycles >= merged.functions[&compute].bcet.wcet_cycles
        );
        // Depths beyond the call-graph height change nothing more.
        let deep = analyze_depth(&image, 4);
        assert_eq!(deep.wcet_cycles, ctx.wcet_cycles);
    }

    #[test]
    fn context_pipeline_thread_invariant() {
        let image = assemble(two_site_src()).unwrap();
        let render = |parallelism: Option<usize>| {
            let config = AnalyzerConfig {
                parallelism,
                context_depth: 1,
                ..AnalyzerConfig::new()
            };
            let mut report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            format!("{report:#?}")
        };
        let sequential = render(Some(1));
        assert_eq!(sequential, render(Some(4)));
        assert_eq!(sequential, render(None));
    }

    #[test]
    fn context_pipeline_handles_modes_unrolling_and_recursion() {
        // Modes + annotation-bounded loop at depth 1.
        let src = "main: li r1, 100\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let header = image.symbol("loop").unwrap();
        let mut config = AnalyzerConfig {
            context_depth: 1,
            ..AnalyzerConfig::new()
        };
        config.annotations = AnnotationSet::parse(&format!(
            "mode ground, air;\nloop {header} bound 10 in mode ground;"
        ))
        .unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        assert!(report.mode_wcet[&Some("ground".to_owned())] < report.mode_wcet[&None]);

        // Annotated recursion still analyzes (merged contexts inside the
        // SCC), at depth 2 with unrolling on.
        let image = assemble(
            r#"
            main: li r1, 3
                  call down
                  halt
            down: beq r1, r0, base
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call down
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            base: ret
            "#,
        )
        .unwrap();
        let down = image.symbol("down").unwrap();
        let mut config = AnalyzerConfig {
            context_depth: 2,
            unrolling: true,
            ..AnalyzerConfig::new()
        };
        config.annotations = AnnotationSet::parse(&format!("recursion {down} depth 4;")).unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
        assert!(report.bcet_cycles <= observed);
    }

    #[test]
    fn context_incremental_warm_run_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "wcet-analyzer-ctx-incr-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let image = assemble(two_site_src()).unwrap();
        let config = AnalyzerConfig {
            context_depth: 1,
            ..AnalyzerConfig::new()
        };
        let analyzer = WcetAnalyzer::with_config(config);
        let canonical = |mut report: AnalysisReport| {
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            report.incr = None;
            format!("{report:#?}")
        };
        let plain = canonical(analyzer.analyze(&image).unwrap());

        let mut cache = crate::incr::ArtifactCache::open(&dir).unwrap();
        let cold = analyzer.analyze_incremental(&image, &mut cache).unwrap();
        let cold_stats = cold.incr.clone().unwrap();
        assert_eq!(cold_stats.fn_hits, 0);
        assert_eq!(canonical(cold), plain, "cold cached run matches cacheless");

        let warm = analyzer.analyze_incremental(&image, &mut cache).unwrap();
        let warm_stats = warm.incr.clone().unwrap();
        assert_eq!(warm_stats.fn_hits, 2, "both functions replay front matter");
        assert_eq!(warm_stats.dirty, 0);
        assert_eq!(
            warm_stats.ipet_solves, 0,
            "per-context IPET solutions replay: {warm_stats:?}"
        );
        assert!(warm_stats.ipet_hits >= 3, "main + two compute contexts");
        assert_eq!(canonical(warm), plain, "warm run is byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_counter_loop() {
        let image =
            assemble("main: li r1, 16\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
        assert!(report.bcet_cycles <= observed);
        assert!(report.guidelines.as_ref().unwrap().is_clean());
        assert_eq!(report.trace.loops, 1);
        assert_eq!(report.trace.loops_bounded_auto, 1);
    }

    #[test]
    fn interprocedural_composition() {
        let report = analyze_src(
            r#"
            main: call helper
                  call helper
                  halt
            helper:
                  li r1, 4
            hl:   subi r1, r1, 1
                  bne r1, r0, hl
                  ret
            "#,
        );
        assert_eq!(report.functions.len(), 2);
        let helper = report
            .functions
            .iter()
            .find(|(&f, _)| f != report.program.entry)
            .unwrap()
            .1;
        // Task WCET ≥ 2 × helper WCET.
        assert!(report.wcet_cycles >= 2 * helper.wcet.wcet_cycles);
    }

    #[test]
    fn recursion_rejected() {
        let image = assemble("main: call f\n halt\nf: call f\n ret").unwrap();
        let err = WcetAnalyzer::new().analyze(&image).unwrap_err();
        assert!(matches!(err, AnalyzeError::Recursion { .. }));
    }

    #[test]
    fn recursion_depth_annotation_unblocks_and_is_sound() {
        // `down` recurses r1 times (r1 = 6 → 7 activations).
        let image = assemble(
            r#"
            main: li r1, 6
                  call down
                  halt
            down: beq r1, r0, base
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  addi r2, r2, 3
                  subi r1, r1, 1
                  call down
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            base: ret
            "#,
        )
        .unwrap();
        let down = image.symbol("down").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations = AnnotationSet::parse(&format!("recursion {down} depth 7;")).unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(
            report.wcet_cycles >= observed,
            "bound {} < observed {observed}",
            report.wcet_cycles
        );
        assert!(report.bcet_cycles <= observed);
    }

    #[test]
    fn mutual_recursion_with_depths_analyzes_conservatively() {
        let image = assemble(
            r#"
            main: li r1, 4
                  call f
                  halt
            f:    beq r1, r0, fo
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call g
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            fo:   ret
            g:    beq r1, r0, go
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call f
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            go:   ret
            "#,
        )
        .unwrap();
        let f = image.symbol("f").unwrap();
        let g = image.symbol("g").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations =
            AnnotationSet::parse(&format!("recursion {f} depth 5;\nrecursion {g} depth 5;"))
                .unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn asymmetric_mutual_recursion_scales_from_raw_body_costs() {
        // Regression: the SCC scaling pass used to (a) substitute a
        // member's own body cost for siblings not yet solved — the
        // first member of an asymmetric cycle undercut its bound — and
        // (b) read already-scaled siblings, compounding the depth factor
        // order-dependently. With equal depth annotations both members
        // must end at exactly depth × Σ(raw body costs): equal bounds.
        let image = assemble(
            r#"
            main: li r1, 4
                  call f
                  halt
            f:    beq r1, r0, fo
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  li   r3, 40
            fw:   mul  r4, r3, r3
                  subi r3, r3, 1
                  bne  r3, r0, fw
                  subi r1, r1, 1
                  call g
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            fo:   ret
            g:    beq r1, r0, go
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call f
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            go:   ret
            "#,
        )
        .unwrap();
        let f = image.symbol("f").unwrap();
        let g = image.symbol("g").unwrap();
        for depth in [0usize, 1] {
            let mut config = AnalyzerConfig {
                context_depth: depth,
                ..AnalyzerConfig::new()
            };
            config.annotations =
                AnnotationSet::parse(&format!("recursion {f} depth 5;\nrecursion {g} depth 5;"))
                    .unwrap();
            let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
            let (wf, wg) = (
                report.functions[&f].wcet.wcet_cycles,
                report.functions[&g].wcet.wcet_cycles,
            );
            assert_eq!(
                wf, wg,
                "ctx depth {depth}: equal depths over one cycle must scale identically"
            );
            let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
            let observed = interp.run(1_000_000).unwrap().cycles;
            assert!(report.wcet_cycles >= observed, "ctx depth {depth}");
            // The cheap member's published bound covers a real activation
            // (a `g` activation runs the whole remaining cycle): it must
            // not undercut the expensive member's body.
            assert!(
                wg >= observed - 50,
                "ctx depth {depth}: wg {wg} vs observed {observed}"
            );
        }
    }

    #[test]
    fn unbounded_loop_rejected_with_diagnosis() {
        let image =
            assemble("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let err = WcetAnalyzer::new().analyze(&image).unwrap_err();
        match err {
            AnalyzeError::Path {
                error: PathError::UnboundedLoop { .. },
                ..
            } => {}
            other => panic!("expected unbounded-loop path error, got {other}"),
        }
    }

    #[test]
    fn annotation_fixes_unbounded_loop() {
        let image =
            assemble("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let header = image.symbol("loop").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations = AnnotationSet::parse(&format!("loop {header} bound 32;")).unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        assert!(report.wcet_cycles > 0);
        assert_eq!(report.trace.loops_bounded_annot, 1);

        // Soundness against a concrete run at the annotated maximum.
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        interp.set_reg(wcet_isa::Reg::new(4), 32);
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn function_pointer_resolution_round_trip() {
        // The jump-table program from the addr-analysis tests, end to end:
        // round 1 fails to see targets, value analysis resolves them, the
        // final program has no unresolved sites and a WCET.
        let src = r#"
            main: li  r1, 0x5000
                  beq r4, r0, second
                  lw  r2, 0(r1)
                  j   go
            second:
                  lw  r2, 4(r1)
            go:   callr r2
                  halt
            h1:   li r3, 1
                  ret
            h2:   li r3, 2
                  li r3, 3
                  ret
        "#;
        let mut image = assemble(src).unwrap();
        let h1 = image.symbol("h1").unwrap();
        let h2 = image.symbol("h2").unwrap();
        image.data.push(wcet_isa::image::Segment::from_words(
            Addr(0x5000),
            &[h1.0, h2.0],
        ));
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        assert_eq!(report.trace.unresolved_initial, 1);
        assert_eq!(report.trace.unresolved_final, 0);
        assert!(report.trace.resolve_rounds >= 2);
        assert_eq!(report.functions.len(), 3);
        assert!(report.wcet_cycles > 0);
    }

    #[test]
    fn mode_specific_bounds_tighten() {
        let src = "main: li r1, 100\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let header = image.symbol("loop").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations = AnnotationSet::parse(&format!(
            "mode ground, air;\nloop {header} bound 10 in mode ground;"
        ))
        .unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let global = report.mode_wcet[&None];
        let ground = report.mode_wcet[&Some("ground".to_owned())];
        let air = report.mode_wcet[&Some("air".to_owned())];
        assert!(ground < global, "ground {ground} < global {global}");
        assert_eq!(air, global, "air falls back to the automatic bound");
    }

    #[test]
    fn unrolling_tightens_cached_loops_and_stays_sound() {
        // Loop body in its own flash cache line: without unrolling the
        // header fetch joins cold and warm paths (not-classified, charged
        // a miss every iteration); peeling confines the miss to the
        // first iteration.
        let src = ".org 0x100000\nmain: li r1, 30\n nop\n nop\n nop\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let machine = MachineConfig::with_caches();

        let plain_cfg = AnalyzerConfig {
            machine: machine.clone(),
            ..AnalyzerConfig::new()
        };
        let plain = WcetAnalyzer::with_config(plain_cfg)
            .analyze(&image)
            .unwrap();

        let unroll_cfg = AnalyzerConfig {
            machine: machine.clone(),
            unrolling: true,
            ..AnalyzerConfig::new()
        };
        let unrolled = WcetAnalyzer::with_config(unroll_cfg)
            .analyze(&image)
            .unwrap();

        assert!(
            unrolled.wcet_cycles < plain.wcet_cycles,
            "unrolling should tighten: {} vs {}",
            unrolled.wcet_cycles,
            plain.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&image, machine);
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(unrolled.wcet_cycles >= observed);
        assert!(unrolled.bcet_cycles <= observed);
    }

    #[test]
    fn unrolling_handles_interprocedural_programs() {
        let src =
            "main: call f\n call f\n halt\nf: li r1, 5\nfl: subi r1, r1, 1\n bne r1, r0, fl\n ret";
        let image = assemble(src).unwrap();
        let config = AnalyzerConfig {
            unrolling: true,
            ..AnalyzerConfig::new()
        };
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn trace_is_populated() {
        let image = assemble("main: li r1, 2\nl: subi r1, r1, 1\n bne r1, r0, l\n halt").unwrap();
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        let t = &report.trace;
        assert_eq!(t.decoded_insts, 4);
        assert_eq!(t.functions, 1);
        assert!(t.blocks >= 3);
        assert!(t.ilp_vars > 0);
        let rendered = t.to_string();
        assert!(rendered.contains("Path Analysis"));
    }
}
