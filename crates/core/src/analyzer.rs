//! The complete aiT-style analyzer (Figure 1 end to end).

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

use wcet_analysis::loopbound::{BoundResult, BoundSource};
use wcet_analysis::{analyze_function, FunctionAnalysis};
use wcet_cfg::callgraph::CallGraph;
use wcet_cfg::graph::{reconstruct, Program};
use wcet_cfg::CfgError;
use wcet_guidelines::annot::AnnotationSet;
use wcet_guidelines::report::PredictabilityReport;
use wcet_guidelines::rules::check_program;
use wcet_isa::interp::MachineConfig;
use wcet_isa::{Addr, Image};
use wcet_micro::blocktime::BlockTimes;
use wcet_micro::cacheanalysis::CacheAnalysis;
use wcet_path::ipet::{self, CallCosts, PathError, WcetResult};

use crate::parallel;
use crate::phases::PhaseTrace;

/// Configuration of a [`WcetAnalyzer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// The hardware model (memory map, base timing, caches).
    pub machine: MachineConfig,
    /// Design-level annotations (Section 4.3).
    pub annotations: AnnotationSet,
    /// Maximum rounds of value-analysis-driven indirect-target
    /// resolution and CFG re-reconstruction.
    pub max_resolve_rounds: usize,
    /// Also run the guideline checker and attach its report.
    pub check_guidelines: bool,
    /// Virtually unroll (peel the first iteration of) every reducible
    /// loop before the cache/pipeline and path analyses — aiT's
    /// precision-enhancing context expansion (reference \[13\] of the
    /// paper). Irreducible loops cannot be peeled; they are analyzed
    /// as-is (or rejected by the loop-bound analysis).
    pub unrolling: bool,
    /// Worker threads for the per-function phases (the wavefront
    /// scheduler): `None` = one per available core, `Some(1)` =
    /// sequential, `Some(n)` = exactly `n` workers. The report is
    /// identical for every setting — the schedule is deterministic and
    /// results merge in function-address order.
    pub parallelism: Option<usize>,
}

impl AnalyzerConfig {
    /// Defaults: simple machine, no annotations, 3 resolve rounds,
    /// guideline checking on, one worker per core.
    #[must_use]
    pub fn new() -> AnalyzerConfig {
        AnalyzerConfig {
            machine: MachineConfig::simple(),
            annotations: AnnotationSet::new(),
            max_resolve_rounds: 3,
            check_guidelines: true,
            unrolling: false,
            parallelism: None,
        }
    }
}

/// `Default` delegates to [`AnalyzerConfig::new`]. It was once derived,
/// which silently produced `max_resolve_rounds = 0` and
/// `check_guidelines = false` — every `..Default::default()` call site
/// skipped indirect-target resolution and guideline checking while the
/// documented defaults claimed otherwise.
impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig::new()
    }
}

/// Why a full analysis failed.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Control-flow reconstruction failed.
    Cfg(CfgError),
    /// The call graph is cyclic (MISRA rule 16.2): bottom-up WCET
    /// composition is impossible without recursion-depth annotations.
    Recursion {
        /// The functions participating in cycles.
        functions: Vec<Addr>,
    },
    /// Path analysis failed for a function.
    Path {
        /// The function whose analysis failed.
        function: Addr,
        /// The underlying error (unbounded loops carry their reasons).
        error: PathError,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Cfg(e) => write!(f, "control-flow reconstruction: {e}"),
            AnalyzeError::Recursion { functions } => {
                write!(f, "recursive functions (rule 16.2): {functions:?}")
            }
            AnalyzeError::Path { function, error } => {
                write!(f, "path analysis of {function}: {error}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<CfgError> for AnalyzeError {
    fn from(e: CfgError) -> Self {
        AnalyzeError::Cfg(e)
    }
}

/// Per-function results within a report.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// WCET bound in cycles (includes callees).
    pub wcet: WcetResult,
    /// BCET bound in cycles (includes callees).
    pub bcet: WcetResult,
}

/// The complete output of one analyzer run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The reconstructed program (after target resolution).
    pub program: Program,
    /// WCET bound of the task (the entry function), in cycles, in the
    /// global (mode-oblivious) analysis.
    pub wcet_cycles: u64,
    /// BCET bound of the task, in cycles.
    pub bcet_cycles: u64,
    /// The worst-case path through the entry function. Block ids refer to
    /// [`Self::analyzed_entry_cfg`], not necessarily `program.entry_cfg()`:
    /// virtual unrolling analyzes a peeled copy with extra blocks.
    pub worst_path: Vec<wcet_cfg::BlockId>,
    /// Per-function CFGs as the timing/path phases analyzed them, for the
    /// functions where that differs from `program`'s reconstruction —
    /// i.e. the peeled copies produced by virtual unrolling. Block ids in
    /// any `worst_path` refer to these.
    pub analyzed_cfgs: BTreeMap<Addr, wcet_cfg::Cfg>,
    /// Per-function results (global mode).
    pub functions: BTreeMap<Addr, FunctionReport>,
    /// Per-operating-mode task WCET bounds (`None` key = global).
    pub mode_wcet: BTreeMap<Option<String>, u64>,
    /// Guideline findings, when checking was enabled.
    pub guidelines: Option<PredictabilityReport>,
    /// The Figure 1 phase trace.
    pub trace: PhaseTrace,
}

impl AnalysisReport {
    /// The CFG of `f` as the timing/path phases analyzed it: the peeled
    /// copy when virtual unrolling expanded it, otherwise the
    /// reconstruction in [`Self::program`]. Block ids in `worst_path`
    /// fields are valid for this CFG.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a reconstructed function of the program.
    #[must_use]
    pub fn analyzed_cfg(&self, f: Addr) -> &wcet_cfg::Cfg {
        self.analyzed_cfgs
            .get(&f)
            .or_else(|| self.program.cfg(f))
            .expect("function was reconstructed")
    }

    /// The entry function's CFG as analyzed (see [`Self::analyzed_cfg`]).
    #[must_use]
    pub fn analyzed_entry_cfg(&self) -> &wcet_cfg::Cfg {
        self.analyzed_cfg(self.program.entry)
    }
}

/// The analyzer.
#[derive(Debug, Clone, Default)]
pub struct WcetAnalyzer {
    config: AnalyzerConfig,
}

impl WcetAnalyzer {
    /// An analyzer with default configuration.
    #[must_use]
    pub fn new() -> WcetAnalyzer {
        WcetAnalyzer {
            config: AnalyzerConfig::new(),
        }
    }

    /// An analyzer with explicit configuration.
    #[must_use]
    pub fn with_config(config: AnalyzerConfig) -> WcetAnalyzer {
        WcetAnalyzer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Runs the full pipeline on a binary image.
    ///
    /// # Errors
    ///
    /// See [`AnalyzeError`]; unbounded loops and unresolved indirections
    /// surface as [`AnalyzeError::Path`] with the tier-one diagnosis
    /// attached.
    pub fn analyze(&self, image: &Image) -> Result<AnalysisReport, AnalyzeError> {
        let mut trace = PhaseTrace::default();
        let threads = parallel::worker_count(self.config.parallelism);

        // --- Phase 1: decoding --------------------------------------
        let t0 = Instant::now();
        let decoded = image.decode_code().map_err(CfgError::Decode)?;
        trace.decoded_insts = decoded.len();
        trace.phase_times[0] = t0.elapsed();
        trace.phase_work_times[0] = trace.phase_times[0];

        // --- Phase 2: CFG reconstruction (+ resolution rounds) -------
        let t1 = Instant::now();
        let mut resolver = self.config.annotations.to_resolver();
        let mut program = reconstruct(image, &resolver)?;
        trace.unresolved_initial = program.unresolved_sites().len();
        let mut analyses: BTreeMap<Addr, FunctionAnalysis> = BTreeMap::new();
        let t2_accum = Instant::now();
        let mut value_time = t2_accum.elapsed();
        let mut value_work = Duration::ZERO;
        let max_rounds = self.config.max_resolve_rounds.max(1);
        for round in 0..max_rounds {
            // Phase 3 runs inside the loop: value analysis may resolve
            // indirect targets, requiring re-reconstruction. Functions
            // are analyzed independently, so every round fans out flat.
            let tv = Instant::now();
            let funcs: Vec<Addr> = program.functions.keys().copied().collect();
            let (results, work) =
                parallel::map_in_order(&funcs, threads, |&f| analyze_function(&program, f, image));
            analyses = funcs.into_iter().zip(results).collect();
            value_time += tv.elapsed();
            value_work += work;
            trace.resolve_rounds = round + 1;

            if program.unresolved_sites().is_empty() {
                break;
            }
            let mut grew = false;
            for fa in analyses.values() {
                let hints = fa.resolver_hints();
                for (at, targets) in hints.call_targets {
                    if resolver.call_targets.get(&at) != Some(&targets) {
                        resolver.add_call_targets(at, targets);
                        grew = true;
                    }
                }
                for (at, targets) in hints.jump_targets {
                    if resolver.jump_targets.get(&at) != Some(&targets) {
                        resolver.add_jump_targets(at, targets);
                        grew = true;
                    }
                }
            }
            // Never reconstruct on the final round: every phase below
            // reads `analyses`, which must stay in sync with `program`
            // (a new reconstruction could contain newly reachable
            // functions that were never analyzed).
            if !grew || round + 1 == max_rounds {
                break;
            }
            program = reconstruct(image, &resolver)?;
        }
        trace.unresolved_final = program.unresolved_sites().len();
        trace.functions = program.functions.len();
        trace.blocks = program.total_blocks();
        trace.edges = program.functions.values().map(|c| c.edges().len()).sum();
        trace.phase_times[1] = t1.elapsed().checked_sub(value_time).unwrap_or_default();
        trace.phase_work_times[1] = trace.phase_times[1];
        trace.phase_times[2] = value_time;
        trace.phase_work_times[2] = value_work;

        // Loop statistics.
        for fa in analyses.values() {
            let bounds = fa.loop_bounds();
            trace.loops += fa.forest().len();
            for (_, r) in bounds.results() {
                if matches!(r, BoundResult::Bounded { source: BoundSource::Auto, .. }) {
                    trace.loops_bounded_auto += 1;
                }
            }
        }

        // --- Guideline checking (report only) -------------------------
        let guideline_report = if self.config.check_guidelines {
            let all: Vec<FunctionAnalysis> = analyses.values().cloned().collect();
            Some(PredictabilityReport::new(check_program(image, &program, &all)))
        } else {
            None
        };

        // --- Recursion check ------------------------------------------
        // Recursive functions need a `recursion … depth N` annotation —
        // the design-level knowledge the paper says recursion requires
        // (Section 3.2). Without it the analysis must refuse.
        let callgraph = CallGraph::build(&program);
        let unannotated: Vec<Addr> = callgraph
            .recursive_functions()
            .into_iter()
            .filter(|&f| self.config.annotations.recursion_depth(f).is_none())
            .collect();
        if !unannotated.is_empty() {
            return Err(AnalyzeError::Recursion {
                functions: unannotated,
            });
        }

        // --- Virtual unrolling (optional context expansion) -------------
        // Guideline checking above used the un-peeled CFGs (peeled copies
        // would double-report findings); timing and path analysis can use
        // the expanded CFGs for per-context cache precision.
        let mut analyzed_cfgs: BTreeMap<Addr, wcet_cfg::Cfg> = BTreeMap::new();
        if self.config.unrolling {
            let t_unroll = Instant::now();
            let summaries = wcet_analysis::valueanalysis::compute_summaries(&program);
            let entry_state = wcet_analysis::valueanalysis::entry_state_from_image(image);
            let functions: Vec<Addr> = analyses.keys().copied().collect();
            // Peel-and-reanalyze is per-function independent: fan out flat.
            let (peeled, unroll_work) = parallel::map_in_order(&functions, threads, |&f| {
                let fa = &analyses[&f];
                let (peeled, _skipped) = wcet_cfg::unroll::peel_all(fa.cfg(), fa.forest());
                if peeled.block_count() != fa.cfg().block_count() {
                    Some(wcet_analysis::valueanalysis::analyze_cfg(
                        peeled,
                        f,
                        entry_state.clone(),
                        wcet_analysis::valueanalysis::AnalysisConfig::default(),
                        summaries.clone(),
                    ))
                } else {
                    None
                }
            });
            for (f, fa2) in functions.into_iter().zip(peeled) {
                if let Some(fa2) = fa2 {
                    analyzed_cfgs.insert(f, fa2.cfg().clone());
                    analyses.insert(f, fa2);
                }
            }
            // Context expansion re-runs the value analysis, so its cost
            // belongs to the loop/value phase.
            trace.phase_times[2] += t_unroll.elapsed();
            trace.phase_work_times[2] += unroll_work;
        }

        // --- Phase 4: cache/pipeline analysis --------------------------
        let t3 = Instant::now();
        let overrides = self.config.annotations.access_overrides();
        let items: Vec<(&Addr, &FunctionAnalysis)> = analyses.iter().collect();
        let (timed, cache_work) = parallel::map_in_order(&items, threads, |&(_, fa)| {
            let block_times =
                BlockTimes::compute_with_overrides(fa, &self.config.machine, &overrides);
            let cache_summary = self.config.machine.icache.as_ref().map(|icc| {
                CacheAnalysis::instruction(fa.cfg(), icc, &self.config.machine.memmap).summary()
            });
            (block_times, cache_summary)
        });
        let mut times: BTreeMap<Addr, BlockTimes> = BTreeMap::new();
        for ((&f, _), (block_times, cache_summary)) in items.iter().zip(timed) {
            times.insert(f, block_times);
            if let Some((h, m, nc)) = cache_summary {
                trace.cache_always_hit += h;
                trace.cache_always_miss += m;
                trace.cache_not_classified += nc;
            }
        }
        trace.phase_times[3] = t3.elapsed();
        trace.phase_work_times[3] = cache_work;

        // --- Phase 5: path analysis as a bottom-up wavefront -----------
        // The call graph is leveled into groups whose callees all lie in
        // earlier levels; groups within one level share no call edges and
        // solve their IPET systems concurrently. Results merge in
        // function-address order, so the report is identical for any
        // worker count.
        let t4 = Instant::now();
        let mut path_work = Duration::ZERO;
        let mut mode_wcet: BTreeMap<Option<String>, u64> = BTreeMap::new();
        let mut global_functions: BTreeMap<Addr, FunctionReport> = BTreeMap::new();

        let mut modes: Vec<Option<String>> = vec![None];
        modes.extend(
            self.config
                .annotations
                .modes()
                .iter()
                .map(|m| Some(m.clone())),
        );

        let levels = callgraph.bottom_up_levels();
        for mode in &modes {
            let mut wcet_costs = CallCosts::new();
            let mut bcet_costs = CallCosts::new();
            let mut per_function: BTreeMap<Addr, FunctionReport> = BTreeMap::new();
            for level in &levels {
                let (outcomes, work) = parallel::map_in_order(level, threads, |group| {
                    self.analyze_call_group(
                        group,
                        mode.as_deref(),
                        &analyses,
                        &times,
                        &callgraph,
                        &wcet_costs,
                        &bcet_costs,
                    )
                });
                path_work += work;
                for outcome in outcomes {
                    let outcome = outcome?;
                    if mode.is_none() {
                        trace.loops_bounded_annot += outcome.annotation_bounds;
                    }
                    for (f, report) in outcome.reports {
                        wcet_costs.insert(f, report.wcet.wcet_cycles);
                        bcet_costs.insert(f, report.bcet.wcet_cycles);
                        per_function.insert(f, report);
                    }
                }
            }
            let entry_report = &per_function[&program.entry];
            mode_wcet.insert(mode.clone(), entry_report.wcet.wcet_cycles);
            if mode.is_none() {
                global_functions = per_function;
            }
        }
        trace.phase_times[4] = t4.elapsed();
        trace.phase_work_times[4] = path_work;

        // ILP size statistics for the entry function (recomputed cheaply,
        // over the CFG the ILP was actually built from).
        let entry_cfg = analyses[&program.entry].cfg();
        trace.ilp_vars = entry_cfg.edges().len() + entry_cfg.block_count() + 1;
        trace.ilp_constraints = entry_cfg.block_count() * 2;

        let entry_report = &global_functions[&program.entry];
        Ok(AnalysisReport {
            wcet_cycles: entry_report.wcet.wcet_cycles,
            bcet_cycles: entry_report.bcet.wcet_cycles,
            worst_path: entry_report.wcet.worst_path.clone(),
            analyzed_cfgs,
            functions: global_functions,
            mode_wcet,
            guidelines: guideline_report,
            trace,
            program,
        })
    }

    /// Path-analyzes one wavefront group for `mode`: a single function,
    /// or a recursive SCC processed as a unit (its members need each
    /// other's per-activation body costs). Callee costs from every
    /// earlier level are complete in `wcet_costs`/`bcet_costs`; same-level
    /// groups share no call edges, so nothing else is needed.
    #[allow(clippy::too_many_arguments)] // phase state, plumbed not stored
    fn analyze_call_group(
        &self,
        group: &[Addr],
        mode: Option<&str>,
        analyses: &BTreeMap<Addr, FunctionAnalysis>,
        times: &BTreeMap<Addr, BlockTimes>,
        callgraph: &CallGraph,
        wcet_costs: &CallCosts,
        bcet_costs: &CallCosts,
    ) -> Result<GroupOutcome, AnalyzeError> {
        let mut reports: Vec<(Addr, FunctionReport)> = Vec::with_capacity(group.len());
        let mut annotation_bounds = 0usize;
        for &f in group {
            let fa = &analyses[&f];
            let mut bounds = fa.loop_bounds();
            self.config.annotations.apply_loop_bounds(fa, &mut bounds, mode);
            if mode.is_none() {
                for (_, r) in bounds.results() {
                    if matches!(
                        r,
                        BoundResult::Bounded { source: BoundSource::Annotation, .. }
                    ) {
                        annotation_bounds += 1;
                    }
                }
            }
            let facts = self.config.annotations.flow_facts(fa.cfg(), mode);
            let ft = &times[&f];

            // Recursive cycles: compute per-activation body costs with
            // the cycle's internal calls priced at zero, then scale by
            // the annotated depth. Each activation runs at most once
            // per depth level, so depth × Σ(body costs over the cycle)
            // bounds the whole recursion. Only this path needs (and
            // mutates) private cost maps — non-recursive groups are
            // always singletons whose callees sit in earlier levels, so
            // they borrow the level-shared maps clone-free.
            let recursive = callgraph.is_recursive(f);
            let (mut wcet, bcet) = if recursive {
                let (mut w_costs, mut b_costs) = (wcet_costs.clone(), bcet_costs.clone());
                for member in callgraph.scc_members(f) {
                    w_costs.insert(member, 0);
                    b_costs.insert(member, 0);
                }
                (
                    ipet::wcet(fa, ft, &bounds, &facts, &w_costs)
                        .map_err(|error| AnalyzeError::Path { function: f, error })?,
                    ipet::bcet(fa, ft, &bounds, &facts, &b_costs)
                        .map_err(|error| AnalyzeError::Path { function: f, error })?,
                )
            } else {
                (
                    ipet::wcet(fa, ft, &bounds, &facts, wcet_costs)
                        .map_err(|error| AnalyzeError::Path { function: f, error })?,
                    ipet::bcet(fa, ft, &bounds, &facts, bcet_costs)
                        .map_err(|error| AnalyzeError::Path { function: f, error })?,
                )
            };
            if recursive {
                let depth = self
                    .config
                    .annotations
                    .recursion_depth(f)
                    .expect("checked above");
                let body_sum: u64 = callgraph
                    .scc_members(f)
                    .iter()
                    .map(|m| {
                        if *m == f {
                            wcet.wcet_cycles
                        } else {
                            reports
                                .iter()
                                .find(|(member, _)| member == m)
                                .map(|(_, r)| r.wcet.wcet_cycles)
                                .unwrap_or(wcet.wcet_cycles)
                        }
                    })
                    .sum();
                wcet.wcet_cycles = depth.saturating_mul(body_sum);
                // One activation is the sound lower bound.
            }
            reports.push((f, FunctionReport { wcet, bcet }));
        }
        Ok(GroupOutcome {
            reports,
            annotation_bounds,
        })
    }
}

/// What one wavefront group's path analysis produced.
struct GroupOutcome {
    /// Per-function reports, in the group's processing order.
    reports: Vec<(Addr, FunctionReport)>,
    /// Annotation-sourced loop bounds seen (counted in global mode only).
    annotation_bounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_isa::asm::assemble;
    use wcet_isa::interp::Interpreter;

    fn analyze_src(src: &str) -> AnalysisReport {
        WcetAnalyzer::new().analyze(&assemble(src).unwrap()).unwrap()
    }

    #[test]
    fn default_config_equals_new() {
        // Regression: `#[derive(Default)]` produced `max_resolve_rounds =
        // 0` and `check_guidelines = false`, so `..Default::default()`
        // call sites silently skipped indirect-target resolution and
        // guideline checking. Field-by-field, then wholesale.
        let derived = AnalyzerConfig::default();
        let documented = AnalyzerConfig::new();
        assert_eq!(derived.machine, documented.machine);
        assert_eq!(derived.annotations, documented.annotations);
        assert_eq!(derived.max_resolve_rounds, documented.max_resolve_rounds);
        assert_eq!(derived.check_guidelines, documented.check_guidelines);
        assert_eq!(derived.unrolling, documented.unrolling);
        assert_eq!(derived.parallelism, documented.parallelism);
        assert_eq!(derived, documented);
        // The documented defaults really are in force.
        assert_eq!(derived.max_resolve_rounds, 3);
        assert!(derived.check_guidelines);
        // And the derived-Default analyzer is the documented analyzer.
        assert_eq!(WcetAnalyzer::default().config(), WcetAnalyzer::new().config());
    }

    #[test]
    fn default_config_resolves_and_checks_guidelines() {
        // The observable symptom of the old divergence: a config built
        // with struct-update syntax must still resolve function pointers
        // and attach a guideline report.
        let src = r#"
            main: li  r1, 0x5000
                  lw  r2, 0(r1)
                  callr r2
                  halt
            h1:   li r3, 1
                  ret
        "#;
        let mut image = assemble(src).unwrap();
        let h1 = image.symbol("h1").unwrap();
        image
            .data
            .push(wcet_isa::image::Segment::from_words(Addr(0x5000), &[h1.0]));
        let config = AnalyzerConfig {
            unrolling: false,
            ..Default::default()
        };
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        assert_eq!(report.trace.unresolved_final, 0, "resolution rounds ran");
        assert!(report.guidelines.is_some(), "guideline checking ran");
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        // One recursive SCC + an independent helper + modes: exercises
        // every scheduler path. The rendered report must be identical for
        // any parallelism (timings excluded — they are real clocks).
        let image = assemble(
            r#"
            main: li r1, 3
                  call down
                  call leaf
                  halt
            down: beq r1, r0, base
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call down
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            base: ret
            leaf: li r2, 5
            ll:   subi r2, r2, 1
                  bne r2, r0, ll
                  ret
            "#,
        )
        .unwrap();
        let down = image.symbol("down").unwrap();
        let render = |parallelism: Option<usize>| {
            let mut config = AnalyzerConfig {
                parallelism,
                ..AnalyzerConfig::new()
            };
            config.annotations =
                AnnotationSet::parse(&format!("recursion {down} depth 4;")).unwrap();
            let mut report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
            report.trace.phase_times = Default::default();
            report.trace.phase_work_times = Default::default();
            format!("{report:#?}")
        };
        let sequential = render(Some(1));
        assert_eq!(sequential, render(Some(2)));
        assert_eq!(sequential, render(Some(8)));
        assert_eq!(sequential, render(None));
    }

    #[test]
    fn end_to_end_counter_loop() {
        let image =
            assemble("main: li r1, 16\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
        assert!(report.bcet_cycles <= observed);
        assert!(report.guidelines.as_ref().unwrap().is_clean());
        assert_eq!(report.trace.loops, 1);
        assert_eq!(report.trace.loops_bounded_auto, 1);
    }

    #[test]
    fn interprocedural_composition() {
        let report = analyze_src(
            r#"
            main: call helper
                  call helper
                  halt
            helper:
                  li r1, 4
            hl:   subi r1, r1, 1
                  bne r1, r0, hl
                  ret
            "#,
        );
        assert_eq!(report.functions.len(), 2);
        let helper = report
            .functions
            .iter()
            .find(|(&f, _)| f != report.program.entry)
            .unwrap()
            .1;
        // Task WCET ≥ 2 × helper WCET.
        assert!(report.wcet_cycles >= 2 * helper.wcet.wcet_cycles);
    }

    #[test]
    fn recursion_rejected() {
        let image = assemble("main: call f\n halt\nf: call f\n ret").unwrap();
        let err = WcetAnalyzer::new().analyze(&image).unwrap_err();
        assert!(matches!(err, AnalyzeError::Recursion { .. }));
    }

    #[test]
    fn recursion_depth_annotation_unblocks_and_is_sound() {
        // `down` recurses r1 times (r1 = 6 → 7 activations).
        let image = assemble(
            r#"
            main: li r1, 6
                  call down
                  halt
            down: beq r1, r0, base
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  addi r2, r2, 3
                  subi r1, r1, 1
                  call down
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            base: ret
            "#,
        )
        .unwrap();
        let down = image.symbol("down").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations =
            AnnotationSet::parse(&format!("recursion {down} depth 7;")).unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(
            report.wcet_cycles >= observed,
            "bound {} < observed {observed}",
            report.wcet_cycles
        );
        assert!(report.bcet_cycles <= observed);
    }

    #[test]
    fn mutual_recursion_with_depths_analyzes_conservatively() {
        let image = assemble(
            r#"
            main: li r1, 4
                  call f
                  halt
            f:    beq r1, r0, fo
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call g
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            fo:   ret
            g:    beq r1, r0, go
                  subi sp, sp, 4
                  sw   lr, 0(sp)
                  subi r1, r1, 1
                  call f
                  lw   lr, 0(sp)
                  addi sp, sp, 4
            go:   ret
            "#,
        )
        .unwrap();
        let f = image.symbol("f").unwrap();
        let g = image.symbol("g").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations = AnnotationSet::parse(&format!(
            "recursion {f} depth 5;\nrecursion {g} depth 5;"
        ))
        .unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn unbounded_loop_rejected_with_diagnosis() {
        let image =
            assemble("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let err = WcetAnalyzer::new().analyze(&image).unwrap_err();
        match err {
            AnalyzeError::Path { error: PathError::UnboundedLoop { .. }, .. } => {}
            other => panic!("expected unbounded-loop path error, got {other}"),
        }
    }

    #[test]
    fn annotation_fixes_unbounded_loop() {
        let image =
            assemble("main: mov r1, r4\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt").unwrap();
        let header = image.symbol("loop").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations =
            AnnotationSet::parse(&format!("loop {header} bound 32;")).unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        assert!(report.wcet_cycles > 0);
        assert_eq!(report.trace.loops_bounded_annot, 1);

        // Soundness against a concrete run at the annotated maximum.
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        interp.set_reg(wcet_isa::Reg::new(4), 32);
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn function_pointer_resolution_round_trip() {
        // The jump-table program from the addr-analysis tests, end to end:
        // round 1 fails to see targets, value analysis resolves them, the
        // final program has no unresolved sites and a WCET.
        let src = r#"
            main: li  r1, 0x5000
                  beq r4, r0, second
                  lw  r2, 0(r1)
                  j   go
            second:
                  lw  r2, 4(r1)
            go:   callr r2
                  halt
            h1:   li r3, 1
                  ret
            h2:   li r3, 2
                  li r3, 3
                  ret
        "#;
        let mut image = assemble(src).unwrap();
        let h1 = image.symbol("h1").unwrap();
        let h2 = image.symbol("h2").unwrap();
        image
            .data
            .push(wcet_isa::image::Segment::from_words(Addr(0x5000), &[h1.0, h2.0]));
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        assert_eq!(report.trace.unresolved_initial, 1);
        assert_eq!(report.trace.unresolved_final, 0);
        assert!(report.trace.resolve_rounds >= 2);
        assert_eq!(report.functions.len(), 3);
        assert!(report.wcet_cycles > 0);
    }

    #[test]
    fn mode_specific_bounds_tighten() {
        let src = "main: li r1, 100\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let header = image.symbol("loop").unwrap();
        let mut config = AnalyzerConfig::new();
        config.annotations = AnnotationSet::parse(&format!(
            "mode ground, air;\nloop {header} bound 10 in mode ground;"
        ))
        .unwrap();
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let global = report.mode_wcet[&None];
        let ground = report.mode_wcet[&Some("ground".to_owned())];
        let air = report.mode_wcet[&Some("air".to_owned())];
        assert!(ground < global, "ground {ground} < global {global}");
        assert_eq!(air, global, "air falls back to the automatic bound");
    }

    #[test]
    fn unrolling_tightens_cached_loops_and_stays_sound() {
        // Loop body in its own flash cache line: without unrolling the
        // header fetch joins cold and warm paths (not-classified, charged
        // a miss every iteration); peeling confines the miss to the
        // first iteration.
        let src = ".org 0x100000\nmain: li r1, 30\n nop\n nop\n nop\nloop: subi r1, r1, 1\n bne r1, r0, loop\n halt";
        let image = assemble(src).unwrap();
        let machine = MachineConfig::with_caches();

        let plain_cfg = AnalyzerConfig {
            machine: machine.clone(),
            ..AnalyzerConfig::new()
        };
        let plain = WcetAnalyzer::with_config(plain_cfg).analyze(&image).unwrap();

        let unroll_cfg = AnalyzerConfig {
            machine: machine.clone(),
            unrolling: true,
            ..AnalyzerConfig::new()
        };
        let unrolled = WcetAnalyzer::with_config(unroll_cfg).analyze(&image).unwrap();

        assert!(
            unrolled.wcet_cycles < plain.wcet_cycles,
            "unrolling should tighten: {} vs {}",
            unrolled.wcet_cycles,
            plain.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&image, machine);
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(unrolled.wcet_cycles >= observed);
        assert!(unrolled.bcet_cycles <= observed);
    }

    #[test]
    fn unrolling_handles_interprocedural_programs() {
        let src = "main: call f\n call f\n halt\nf: li r1, 5\nfl: subi r1, r1, 1\n bne r1, r0, fl\n ret";
        let image = assemble(src).unwrap();
        let config = AnalyzerConfig {
            unrolling: true,
            ..AnalyzerConfig::new()
        };
        let report = WcetAnalyzer::with_config(config).analyze(&image).unwrap();
        let mut interp = Interpreter::with_config(&image, MachineConfig::simple());
        let observed = interp.run(100_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
    }

    #[test]
    fn trace_is_populated() {
        let image = assemble("main: li r1, 2\nl: subi r1, r1, 1\n bne r1, r0, l\n halt").unwrap();
        let report = WcetAnalyzer::new().analyze(&image).unwrap();
        let t = &report.trace;
        assert_eq!(t.decoded_insts, 4);
        assert_eq!(t.functions, 1);
        assert!(t.blocks >= 3);
        assert!(t.ilp_vars > 0);
        let rendered = t.to_string();
        assert!(rendered.contains("Path Analysis"));
    }
}
