//! Workload generators: the software structures the paper talks about.
//!
//! Each generator produces a linked binary plus the design-level
//! annotations a developer following the paper's recommendations would
//! write. The generators correspond to Section 4.3's scenarios (operating
//! modes, message handlers, error handling, imprecise memory accesses),
//! Section 2's single-path discussion, and the COLA project's cache
//! killers.

use wcet_guidelines::annot::AnnotationSet;
use wcet_isa::asm::{assemble, assemble_for};
use wcet_isa::image::Segment;
use wcet_isa::{Addr, Image, IsaKind};

/// A generated workload: binary, annotations, and provenance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (used in bench output).
    pub name: &'static str,
    /// The linked binary.
    pub image: Image,
    /// The design-level annotations belonging to it.
    pub annotations: AnnotationSet,
    /// What the workload demonstrates.
    pub description: &'static str,
    /// The assembly source the image was built from — the CLI smoke
    /// tests feed it to the `wcet` binary. Workloads that append data
    /// segments programmatically (e.g. the state machine's jump table)
    /// are not fully reproduced by re-assembling this text.
    pub source: String,
}

fn build(name: &'static str, description: &'static str, src: &str, annots: &str) -> Workload {
    build_for(IsaKind::House, name, description, src, annots)
}

fn build_for(
    isa: IsaKind,
    name: &'static str,
    description: &'static str,
    src: &str,
    annots: &str,
) -> Workload {
    let image = assemble_for(isa, src)
        .unwrap_or_else(|e| panic!("workload `{name}` assembles for {isa}: {e}"));
    let annotations = AnnotationSet::parse(annots)
        .unwrap_or_else(|e| panic!("workload `{name}` annotations parse: {e}"));
    Workload {
        name,
        image,
        annotations,
        description,
        source: src.to_owned(),
    }
}

/// The flight-control mode switcher of Section 4.3 ("plane is on ground /
/// plane is in air"): the mode flag comes from a memory-mapped sensor
/// word, each mode runs a control loop of very different length, and the
/// annotations document which code each mode excludes.
#[must_use]
pub fn flight_control() -> Workload {
    flight_control_for(IsaKind::House)
}

/// [`flight_control`] assembled for `isa`. The assembly surface syntax is
/// ISA-neutral, so a port re-assembles the same source; the mode
/// annotations are recomputed from the re-assembled symbol table because
/// `li` expands to different instruction counts per backend, shifting
/// every label address.
#[must_use]
pub fn flight_control_for(isa: IsaKind) -> Workload {
    let src = r#"
        .org 0x1000
        main:
            li   r1, 0xf0000000     # mode register (MMIO)
            lw   r2, 0(r1)          # 0 = ground, nonzero = air
            beq  r2, r0, ground
        air:
            li   r3, 50             # gain-scheduling loop, 50 surfaces
        air_loop:
            mul  r4, r3, r3
            addi r5, r4, 1
            subi r3, r3, 1
            bne  r3, r0, air_loop
            j    done
        ground:
            li   r3, 6              # gear/brake checks only
        ground_loop:
            addi r5, r5, 2
            subi r3, r3, 1
            bne  r3, r0, ground_loop
        done:
            halt
    "#;
    let image = assemble_for(isa, src).expect("flight control assembles");
    let air = image.symbol("air").expect("air label");
    let ground = image.symbol("ground").expect("ground label");
    let annots = format!(
        "mode ground, air;\n\
         exclude {air} in mode ground;\n\
         exclude {ground} in mode air;\n"
    );
    build_for(
        isa,
        "flight_control",
        "operating modes: ground vs air control laws (Section 4.3)",
        src,
        &annots,
    )
}

/// The message handler of Section 4.3: fixed-size read and write buffers,
/// copy loops whose lengths come from the device (statically unknown),
/// and the design knowledge that receive and transmit can never happen in
/// the same scheduling cycle.
///
/// `buf_words` is the buffer capacity documented at design time.
#[must_use]
pub fn message_handler(buf_words: u32) -> Workload {
    message_handler_for(IsaKind::House, buf_words)
}

/// [`message_handler`] assembled for `isa` (see [`flight_control_for`]).
#[must_use]
pub fn message_handler_for(isa: IsaKind, buf_words: u32) -> Workload {
    let src = r#"
        .org 0x1000
        .equ CAN 0xf0000000
        .equ BUF 0x8000
        main:
            li   r1, CAN
            li   r3, BUF
            lw   r6, 0(r1)          # rx-pending flag
            lw   r7, 4(r1)          # tx-pending flag
            lw   r4, 8(r1)          # transfer length (device supplied!)
            beq  r6, r0, skip_rx
        rx_head:
            beq  r4, r0, skip_rx
        rx_loop:
            lw   r5, 12(r1)         # read CAN data register
            sw   r5, 0(r3)
            addi r3, r3, 4
            subi r4, r4, 1
            bne  r4, r0, rx_loop
        skip_rx:
            lw   r4, 8(r1)
            beq  r7, r0, skip_tx
        tx_head:
            beq  r4, r0, skip_tx
        tx_loop:
            lw   r5, 0(r3)
            sw   r5, 12(r1)         # write CAN data register
            addi r3, r3, 4
            subi r4, r4, 1
            bne  r4, r0, tx_loop
        skip_tx:
            halt
    "#;
    let image = assemble_for(isa, src).expect("message handler assembles");
    let rx_loop = image.symbol("rx_loop").expect("rx_loop");
    let tx_loop = image.symbol("tx_loop").expect("tx_loop");
    let rx_head = image.symbol("rx_head").expect("rx_head");
    let tx_head = image.symbol("tx_head").expect("tx_head");
    let annots = format!(
        "# buffers are {buf_words} words by design\n\
         loop {rx_loop} bound {buf_words};\n\
         loop {tx_loop} bound {buf_words};\n\
         # a scheduling cycle is either read or write, never both\n\
         mutex {rx_head}, {tx_head} capacity 1;\n"
    );
    build_for(
        isa,
        "message_handler",
        "message-based communication: device-supplied lengths and rx/tx exclusion (Section 4.3)",
        src,
        &annots,
    )
}

/// A jump-table state machine (the code a SCADE/MATLAB code generator
/// emits for a mode automaton): the dispatch is a function-pointer call
/// through a table in the data segment — tier-one challenge E15. The
/// bounded state index lets the value analysis resolve the table.
///
/// # Panics
///
/// Panics if `n_states` is not in `2..=8` (the small-set resolution
/// limit).
#[must_use]
pub fn state_machine(n_states: u32) -> Workload {
    assert!(
        (2..=8).contains(&n_states),
        "state count must be in 2..=8, got {n_states}"
    );
    let mut src = String::from(
        "        .org 0x1000\n\
         main:\n\
             li   r1, 0xf0000000\n\
             lw   r2, 0(r1)          # raw state input\n",
    );
    // Clamp the state to [0, n): the branch refinement pins the index
    // interval, which the value analysis enumerates into an exact set —
    // that is what makes the table load resolvable.
    src.push_str(&format!(
        "             li   r3, {n_states}\n\
         \x20            bltu r2, r3, ok\n\
         \x20            li   r2, 0\n\
         ok:\n\
         \x20            shli r2, r2, 2\n\
         \x20            li   r5, 0x5000\n\
         \x20            add  r5, r5, r2\n\
         \x20            lw   r6, 0(r5)          # handler address from table\n\
         \x20            callr r6\n\
         \x20            halt\n"
    ));
    for s in 0..n_states {
        let work = 2 + 3 * s; // different cost per state
        src.push_str(&format!(
            "handler{s}:\n\
             \x20            li r7, {work}\n\
             h{s}_loop:\n\
             \x20            subi r7, r7, 1\n\
             \x20            bne  r7, r0, h{s}_loop\n\
             \x20            ret\n"
        ));
    }
    let mut image = assemble(&src).expect("state machine assembles");
    let table: Vec<u32> = (0..n_states)
        .map(|s| image.symbol(&format!("handler{s}")).expect("handler").0)
        .collect();
    image.data.push(Segment::from_words(Addr(0x5000), &table));
    Workload {
        name: "state_machine",
        image,
        annotations: AnnotationSet::new(),
        description: "jump-table state machine: function-pointer resolution (Section 3.2)",
        source: src,
    }
}

/// The error-handling task of Section 4.3: a main computation interleaved
/// with `n_checks` error checks, each calling an expensive recovery
/// routine when its (statically unknown) error flag is set. Returns the
/// workload *without* error annotations; [`error_annotations`] builds the
/// paper's two remedies.
///
/// # Panics
///
/// Panics if `n_checks == 0` or `n_checks > 16`.
#[must_use]
pub fn error_handling(n_checks: u32) -> Workload {
    assert!((1..=16).contains(&n_checks), "1..=16 checks supported");
    let mut src = String::from(
        "        .org 0x1000\n\
         main:\n\
             li   r10, 0xf0000000\n",
    );
    for i in 0..n_checks {
        src.push_str(&format!(
            "             addi r5, r5, 7        # main computation step {i}\n\
             \x20            lw   r6, {}(r10)      # error flag {i}\n\
             \x20            beq  r6, r0, ok{i}\n\
             err{i}:\n\
             \x20            call recover\n\
             ok{i}:\n",
            4 * i
        ));
    }
    src.push_str(
        "             halt\n\
         recover:\n\
             li   r8, 24\n\
         rec_loop:\n\
             mul  r9, r8, r8\n\
             subi r8, r8, 1\n\
             bne  r8, r0, rec_loop\n\
             ret\n",
    );
    build(
        "error_handling",
        "error handling: all-errors-at-once vs design knowledge (Section 4.3)",
        &src,
        "",
    )
}

/// The two error-handling annotation remedies of Section 4.3 for an
/// [`error_handling`] workload: `(exclude_all, budget_k)` — the
/// "error case irrelevant for the worst case" analysis, and the
/// "at most `k` errors per activation" analysis.
#[must_use]
pub fn error_annotations(
    workload: &Workload,
    n_checks: u32,
    k: u64,
) -> (AnnotationSet, AnnotationSet) {
    let err_blocks: Vec<String> = (0..n_checks)
        .map(|i| {
            workload
                .image
                .symbol(&format!("err{i}"))
                .expect("error block")
                .to_string()
        })
        .collect();
    let exclude_text: String = err_blocks
        .iter()
        .map(|a| format!("exclude {a};\n"))
        .collect();
    let budget_text = format!("sumcount {} max {k};\n", err_blocks.join(", "));
    (
        AnnotationSet::parse(&exclude_text).expect("exclude annotations parse"),
        AnnotationSet::parse(&budget_text).expect("budget annotations parse"),
    )
}

/// The single-path comparison of Section 2 (Puschner/Kirner): the same
/// conditional computation once as a branchy diamond and once transformed
/// to predicated straight-line code. Returns `(branchy, single_path)`.
///
/// The single-path version always executes *both* arms' instructions —
/// "the processor would have to always fetch the corresponding
/// instructions, even if they would not be executed. Hence, the
/// single-path paradigm actually impairs the worst-case behavior."
#[must_use]
pub fn single_path_pair() -> (Workload, Workload) {
    let branchy = build(
        "branchy",
        "conditional kernel, branchy form (baseline for E13)",
        r#"
            .org 0x1000
            main:
                li   r1, 0xf0000000
                lw   r2, 0(r1)          # input
                beq  r2, r0, cheap
            costly:
                mul  r3, r2, r2
                mul  r3, r3, r2
                mul  r3, r3, r2
                j    done
            cheap:
                addi r3, r2, 1
                shli r3, r3, 2
                xor  r3, r3, r2
                addi r3, r3, 7
            done:
                halt
        "#,
        "",
    );
    let single_path = build(
        "single_path",
        "conditional kernel transformed to single-path predicated code (E13)",
        r#"
            .org 0x1000
            main:
                li   r1, 0xf0000000
                lw   r2, 0(r1)          # input
                # both arms computed unconditionally
                mul  r3, r2, r2
                mul  r3, r3, r2
                mul  r3, r3, r2         # costly arm result
                addi r4, r2, 1          # cheap arm result
                shli r4, r4, 2
                xor  r4, r4, r2
                addi r4, r4, 7
                sltu r5, r0, r2         # predicate: input != 0
                sel  r3, r5, r3, r4
                halt
        "#,
        "",
    );
    (branchy, single_path)
}

/// Two layouts of the same two-phase loop nest for the instruction-cache
/// experiment E16 (the COLA "cache killer" discussion). Returns
/// `(killer, friendly)`: in the killer layout the two phase bodies are
/// 256 bytes apart — the period of the small icache — so they evict each
/// other every outer iteration; the friendly layout offsets phase B into
/// disjoint sets.
#[must_use]
pub fn cache_pair() -> (Workload, Workload) {
    // Phase bodies are 4 instructions (16 B = 1 line). The icache has 16
    // sets × 16 B = 256 B period.
    let body_a = "            mul  r5, r2, r2\n\
                  \x20            addi r5, r5, 3\n";
    let make = |pad_words: usize, name: &'static str, description: &'static str| {
        let mut src = String::from(
            "        .org 0x100000\n\
             main:\n\
                 li   r1, 40            # outer iterations\n\
             outer:\n\
             phase_a:\n",
        );
        src.push_str(body_a);
        src.push_str("            j    mid\n");
        for _ in 0..pad_words {
            src.push_str("            nop\n");
        }
        src.push_str("mid:\n");
        src.push_str("phase_b:\n");
        src.push_str(body_a);
        src.push_str(
            "            subi r1, r1, 1\n\
             \x20            bne  r1, r0, outer\n\
             \x20            halt\n",
        );
        build(name, description, &src, "")
    };
    let killer = make(
        (256 - 3 * 4) / 4,
        "cache_killer",
        "two phases 256 B apart: same icache sets, mutual eviction (E16)",
    );
    let friendly = make(
        1,
        "cache_friendly",
        "two phases in adjacent lines: disjoint icache sets (E16)",
    );
    (killer, friendly)
}

/// A dense matrix-vector multiply kernel over an SRAM matrix: the
/// quickstart's nested counter loops with clean bounds.
///
/// # Panics
///
/// Panics if `n` is not in `1..=32`.
#[must_use]
pub fn matrix_kernel(n: u32) -> Workload {
    matrix_kernel_for(IsaKind::House, n)
}

/// [`matrix_kernel`] assembled for `isa` (see [`flight_control_for`]).
///
/// # Panics
///
/// Panics if `n` is not in `1..=32`.
#[must_use]
pub fn matrix_kernel_for(isa: IsaKind, n: u32) -> Workload {
    assert!((1..=32).contains(&n), "matrix size must be 1..=32");
    let src = format!(
        r#"
        .org 0x1000
        .equ MAT 0x8000
        .equ VEC 0xa000
        .equ OUT 0xb000
        main:
            li   r1, 0              # row
        rows:
            li   r2, 0              # col
            li   r5, 0              # accumulator
        cols:
            # r6 = mat[row*n + col]
            li   r7, {n}
            mul  r8, r1, r7
            add  r8, r8, r2
            shli r8, r8, 2
            li   r9, MAT
            add  r9, r9, r8
            lw   r6, 0(r9)
            # r10 = vec[col]
            shli r10, r2, 2
            li   r11, VEC
            add  r11, r11, r10
            lw   r10, 0(r11)
            mul  r6, r6, r10
            add  r5, r5, r6
            addi r2, r2, 1
            li   r7, {n}
            blt  r2, r7, cols
            # out[row] = acc
            shli r12, r1, 2
            li   r13, OUT
            add  r13, r13, r12
            sw   r5, 0(r13)
            addi r1, r1, 1
            li   r7, {n}
            blt  r1, r7, rows
            halt
        "#
    );
    build_for(
        isa,
        "matrix_kernel",
        "nested counter loops over SRAM data (quickstart workload)",
        &src,
        "",
    )
}

/// A wide call tree for the wavefront scheduler: `main` calls `n`
/// independent leaf functions, each with its own counter loop. The call
/// graph levels into one wide wavefront of per-function analyses plus the
/// root — the scaling workload for `parallelism` benchmarks.
///
/// # Panics
///
/// Panics if `n` is not in `1..=64`.
#[must_use]
pub fn call_fanout(n: u32) -> Workload {
    call_fanout_with(n, &[])
}

/// [`call_fanout`] with per-leaf iteration-count overrides: `(leaf,
/// iters)` replaces leaf `f<leaf>`'s default counter bound. Two images
/// built with overrides differing in one leaf differ in exactly that
/// function's bytes — the single-function-mutation substrate of the
/// incremental re-analysis tests and benches.
///
/// # Panics
///
/// Panics if `n` is not in `1..=64`, or an override names a leaf `>= n`
/// or a zero iteration count (the loop structure must survive).
#[must_use]
pub fn call_fanout_with(n: u32, overrides: &[(u32, u32)]) -> Workload {
    assert!((1..=64).contains(&n), "fan-out must be 1..=64, got {n}");
    for &(leaf, iters) in overrides {
        assert!(leaf < n, "override names leaf {leaf} of {n}");
        assert!(iters > 0, "leaf loops need at least one iteration");
    }
    let mut src = String::from("        .org 0x1000\nmain:\n");
    for i in 0..n {
        src.push_str(&format!("            call f{i}\n"));
    }
    src.push_str("            halt\n");
    for i in 0..n {
        let default = 4 + (i % 7) * 3; // vary per-function work
        let iters = overrides
            .iter()
            .rev()
            .find(|(leaf, _)| *leaf == i)
            .map_or(default, |&(_, it)| it);
        src.push_str(&format!(
            "f{i}:\n\
             \x20            li   r1, {iters}\n\
             f{i}_loop:\n\
             \x20            mul  r2, r1, r1\n\
             \x20            subi r1, r1, 1\n\
             \x20            bne  r1, r0, f{i}_loop\n\
             \x20            ret\n"
        ));
    }
    build(
        "call_fanout",
        "wide call graph: one wavefront level of independent functions",
        &src,
        "",
    )
}

/// The heavyweight call tree: `main` calls `groups` mid-level
/// dispatchers, each of which calls `per_group` leaves, and every leaf is
/// a realistic function body — nested loops, a data-dependent diamond,
/// SRAM traffic — so per-function value analysis carries
/// production-shaped cost. Every leaf additionally calls the shared
/// `scale` subroutine with a *per-leaf* work-size argument that `scale`
/// clamps to its table capacity (31): the guideline-conforming shape
/// whose merged analysis pays the clamp bound at every call, and whose
/// context-sensitive analysis (`context_depth ≥ 1`) prices each leaf's
/// call with its actual argument. This is the largest workload in the
/// repository (instructions and analysis time) and the subject of the
/// `incremental` bench group: against a warm cache, a one-leaf mutation
/// re-analyzes exactly the leaf plus its dirt cone (one mid-level
/// dispatcher and `main`) instead of all `groups × per_group + groups +
/// 1` functions — the call graph's depth is what keeps the cone narrow.
///
/// `overrides` name leaves by flat index `0..groups*per_group`, as in
/// [`call_fanout_with`].
///
/// # Panics
///
/// Panics if `groups * per_group` is not in `1..=64`, or an override
/// names a missing leaf or a zero iteration count.
#[must_use]
pub fn call_tree_heavy(groups: u32, per_group: u32, overrides: &[(u32, u32)]) -> Workload {
    let n = groups * per_group;
    assert!((1..=64).contains(&n), "leaf count must be 1..=64, got {n}");
    for &(leaf, iters) in overrides {
        assert!(leaf < n, "override names leaf {leaf} of {n}");
        assert!(iters > 0, "leaf loops need at least one iteration");
    }
    let mut src = String::from("        .org 0x1000\nmain:\n");
    for g in 0..groups {
        src.push_str(&format!("            call g{g}\n"));
    }
    src.push_str("            halt\n");
    for g in 0..groups {
        src.push_str(&format!("g{g}:\n"));
        src.push_str(
            "            subi sp, sp, 4\n\
             \x20            sw   lr, 0(sp)\n",
        );
        for l in 0..per_group {
            src.push_str(&format!("            call f{}\n", g * per_group + l));
        }
        src.push_str(
            "            lw   lr, 0(sp)\n\
             \x20            addi sp, sp, 4\n\
             \x20            ret\n",
        );
    }
    for i in 0..n {
        let default = 3 + (i % 5) * 2;
        let iters = overrides
            .iter()
            .rev()
            .find(|(leaf, _)| *leaf == i)
            .map_or(default, |&(_, it)| it);
        let scratch = 0x8000 + 16 * i;
        let scale_arg = 1 + (i % 4) * 2; // 1, 3, 5, 7 — all below the clamp
        src.push_str(&format!(
            "f{i}:\n\
             \x20            subi sp, sp, 4\n\
             \x20            sw   lr, 0(sp)\n\
             \x20            li   r1, {iters}\n\
             f{i}_outer:\n\
             \x20            li   r2, 6\n\
             f{i}_inner:\n\
             \x20            mul  r3, r2, r2\n\
             \x20            add  r4, r4, r3\n\
             \x20            shli r6, r3, 2\n\
             \x20            and  r6, r6, r3\n\
             \x20            or   r8, r6, r4\n\
             \x20            sub  r9, r8, r3\n\
             \x20            li   r7, {scratch:#x}\n\
             \x20            sw   r4, 0(r7)\n\
             \x20            sw   r9, 4(r7)\n\
             \x20            lw   r5, 0(r7)\n\
             \x20            xor  r4, r4, r5\n\
             \x20            beq  r9, r0, f{i}_skip\n\
             \x20            addi r8, r8, 3\n\
             \x20            mul  r8, r8, r3\n\
             \x20            j    f{i}_join\n\
             f{i}_skip:\n\
             \x20            shri r8, r8, 1\n\
             \x20            addi r8, r8, 1\n\
             f{i}_join:\n\
             \x20            sw   r8, 8(r7)\n\
             \x20            lw   r6, 4(r7)\n\
             \x20            add  r4, r4, r6\n\
             \x20            subi r2, r2, 1\n\
             \x20            bne  r2, r0, f{i}_inner\n\
             \x20            subi r1, r1, 1\n\
             \x20            bne  r1, r0, f{i}_outer\n\
             \x20            li   r1, {scale_arg}\n\
             \x20            call scale\n\
             \x20            lw   lr, 0(sp)\n\
             \x20            addi sp, sp, 4\n\
             \x20            ret\n"
        ));
    }
    // The shared work-scaler: clamps its argument to the table capacity
    // (a design-level guarantee the clamp makes machine-checkable), then
    // loops that many times. Under the merged analysis every caller pays
    // the clamp bound; per-context analysis recovers each leaf's actual
    // argument.
    src.push_str(
        "scale:\n\
         \x20            andi r1, r1, 31\n\
         \x20            beq  r1, r0, scale_done\n\
         scale_loop:\n\
         \x20            mul  r2, r1, r1\n\
         \x20            subi r1, r1, 1\n\
         \x20            bne  r1, r0, scale_loop\n\
         scale_done:\n\
         \x20            ret\n",
    );
    build(
        "call_tree_heavy",
        "two-level call tree with a shared clamped subroutine (incremental + context workload)",
        &src,
        "",
    )
}

/// The context-sensitivity killer: `main` passes very different work
/// sizes to the same clamped `compute` routine from two call sites. The
/// merged (depth-0) analysis sees ⊤ at `compute`'s entry, so the clamp
/// bound (63 iterations) prices *both* calls; at `--context-depth 1`
/// each site's context carries the caller's register intervals and the
/// loop is bounded by the actual argument — 3 and 60 — so the WCET bound
/// drops strictly. The soundness oracle holds at both depths.
#[must_use]
pub fn context_killer() -> Workload {
    context_killer_for(IsaKind::House)
}

/// [`context_killer`] assembled for `isa` (see [`flight_control_for`]).
#[must_use]
pub fn context_killer_for(isa: IsaKind) -> Workload {
    let src = r#"
        .org 0x1000
        main:
            li   r1, 3
            call compute            # light request
            li   r1, 60
            call compute            # heavy request
            halt
        compute:
            andi r1, r1, 63         # clamp to the table capacity
            beq  r1, r0, cdone
        cloop:
            mul  r2, r1, r1
            addi r3, r3, 1
            subi r1, r1, 1
            bne  r1, r0, cloop
        cdone:
            ret
    "#;
    build_for(
        isa,
        "context_killer",
        "one clamped callee, two very different call sites: the VIVU precision lever (reference [13])",
        src,
        "",
    )
}

/// The persistence killer: a tight loop in flash calling a small
/// subroutine every iteration. PR 4's call clobber wipes the caller's
/// abstract cache at the call, so every post-call fetch in the loop body
/// is charged a cold flash miss *per iteration* — forever. With
/// `--persistence` the call is priced by `work`'s footprint summary
/// (two lines, disjoint from the loop head's set), the loop body keeps
/// its must-cache guarantees across the call, and the one genuinely
/// joined-away line classifies first-miss: one miss per activation
/// instead of 48. The bound tightens strictly at `--context-depth 1
/// --caches --persistence`; the soundness oracle holds either way.
#[must_use]
pub fn persistence_killer() -> Workload {
    persistence_killer_for(IsaKind::House)
}

/// [`persistence_killer`] assembled for `isa` (see [`flight_control_for`]).
#[must_use]
pub fn persistence_killer_for(isa: IsaKind) -> Workload {
    let src = r#"
        .org 0x100000
        main:
            li   r1, 48             # iterations
        loop:
            call work               # the clobber-vs-footprint lever
            addi r5, r5, 1
            subi r1, r1, 1
            bne  r1, r0, loop
            halt
        work:
            mul  r2, r6, r6
            addi r2, r2, 3
            ret
    "#;
    let image = assemble_for(isa, src).expect("persistence killer assembles");
    let header = image.symbol("loop").expect("loop label");
    // The call inside the body hides the counter pattern from the
    // automatic bound analysis; the iteration count is design knowledge.
    let annots = format!("loop {header} bound 48;\n");
    build_for(
        isa,
        "persistence_killer",
        "tight loop calling a small callee: warm-cache knowledge across calls (persistence lever)",
        src,
        &annots,
    )
}

/// A branch ladder under the static BTFNT predictor: each loop iteration
/// runs three *forward* conditionals (predicted not-taken — taking one
/// mispredicts) before the *backward* latch (predicted taken — falling
/// out mispredicts). With `--pipeline` every conditional out-edge in the
/// ILP carries its misprediction surcharge, so the worst path prices
/// control flow the flat model cannot see; the soundness oracle holds in
/// both modes on both ISAs.
#[must_use]
pub fn branch_heavy() -> Workload {
    branch_heavy_for(IsaKind::House)
}

/// [`branch_heavy`] assembled for `isa` (see [`flight_control_for`]).
#[must_use]
pub fn branch_heavy_for(isa: IsaKind) -> Workload {
    let src = r#"
        .org 0x1000
        main:
            li   r1, 24             # iterations
        bh_loop:
            andi r2, r1, 3          # low bits steer the ladder
            li   r3, 2
            beq  r2, r0, bh_mid     # forward: predicted not-taken
            mul  r4, r2, r2
            addi r4, r4, 1
        bh_mid:
            blt  r2, r3, bh_high    # forward: predicted not-taken
            mul  r5, r4, r2
            addi r5, r5, 3
        bh_high:
            beq  r2, r3, bh_next    # forward: predicted not-taken
            addi r6, r6, 5
            mul  r6, r6, r2
        bh_next:
            subi r1, r1, 1
            bne  r1, r0, bh_loop    # backward latch: predicted taken
            halt
    "#;
    build_for(
        isa,
        "branch_heavy",
        "forward branch ladder inside a counted loop: the BTFNT misprediction lever",
        src,
        "",
    )
}

/// The pipeline killer: a straight-line, multiply-heavy loop body whose
/// flat cost model charges every instruction fetch + execute + retire in
/// sequence, while the real in-order machine overlaps each instruction's
/// execute stage with its successor's fetch. The abstract pipeline
/// carries that overlap as residual-latency vectors, so `--pipeline`
/// tightens the WCET well past 10% here (the PR 10 acceptance lever);
/// the single backward latch keeps misprediction surcharges off the
/// steady-state path.
#[must_use]
pub fn pipeline_killer() -> Workload {
    pipeline_killer_for(IsaKind::House)
}

/// [`pipeline_killer`] assembled for `isa` (see [`flight_control_for`]).
#[must_use]
pub fn pipeline_killer_for(isa: IsaKind) -> Workload {
    let src = r#"
        .org 0x1000
        .equ SCRATCH 0x8000
        main:
            li   r1, 32             # iterations
            li   r8, SCRATCH
        pk_loop:
            mul  r2, r1, r1         # execute-stage chain: the overlap lever
            mul  r3, r2, r1
            mul  r4, r3, r2
            lw   r5, 0(r8)
            add  r5, r5, r4
            sw   r5, 0(r8)
            mul  r6, r5, r2
            mul  r7, r6, r3
            addi r9, r9, 1
            subi r1, r1, 1
            bne  r1, r0, pk_loop    # backward latch: predicted taken
            halt
    "#;
    build_for(
        isa,
        "pipeline_killer",
        "straight-line multiply chain in a counted loop: fetch/execute overlap (pipeline lever)",
        src,
        "",
    )
}

/// The named workload corpus, with design-level annotations — the unit
/// set of the end-to-end soundness oracle, the golden report snapshots,
/// and the incremental benches. Grew past the original ten with
/// `call_tree_heavy` (the two-level call tree), `context_killer` (the
/// context-sensitivity workload), `persistence_killer` (the
/// cache-persistence workload), and the PR 10 pair `branch_heavy` /
/// `pipeline_killer` (the branch-prediction and pipeline-overlap levers).
#[must_use]
pub fn corpus() -> Vec<Workload> {
    let mut workloads = vec![
        flight_control(),
        message_handler(16),
        state_machine(4),
        error_handling(4),
        matrix_kernel(4),
    ];
    let (branchy, single_path) = single_path_pair();
    workloads.push(branchy);
    workloads.push(single_path);
    let (killer, friendly) = cache_pair();
    workloads.push(killer);
    workloads.push(friendly);
    workloads.push(call_fanout(8));
    workloads.push(call_tree_heavy(2, 3, &[]));
    workloads.push(context_killer());
    workloads.push(persistence_killer());
    workloads.push(branch_heavy());
    workloads.push(pipeline_killer());
    workloads
}

/// The RV32I port of the corpus: the workloads whose sources stay inside
/// the RV32I subset (no `sel`, no floating point, no `alloc`, no jump
/// tables), re-assembled for [`IsaKind::Rv32i`] with their annotations
/// recomputed against the shifted label addresses. These are the units of
/// the cross-ISA golden snapshots (`tests/golden/<name>.rv32i.txt`) and
/// the RV32I soundness oracle.
#[must_use]
pub fn rv32i_corpus() -> Vec<Workload> {
    let isa = IsaKind::Rv32i;
    vec![
        flight_control_for(isa),
        message_handler_for(isa, 16),
        matrix_kernel_for(isa, 4),
        context_killer_for(isa),
        persistence_killer_for(isa),
        branch_heavy_for(isa),
        pipeline_killer_for(isa),
    ]
}

/// A device-driver routine with a pointer-indirect access the analysis
/// cannot pin down, plus the Section 4.3 remedy: an `access` annotation
/// restricting it to the CAN controller's MMIO window. Returns
/// `(workload without annotation, annotated set)`.
#[must_use]
pub fn driver_imprecise_access() -> (Workload, AnnotationSet) {
    let src = r#"
        .org 0x1000
        main:
            # r4: device descriptor pointer handed in by the kernel —
            # statically unknown.
            lw   r2, 0(r4)          # load register offset from descriptor
            add  r3, r4, r2
            lw   r5, 4(r3)          # the imprecise access
            addi r5, r5, 1
            li   r6, 0x8000
            sw   r5, 0(r6)
            halt
    "#;
    let w = build(
        "driver_imprecise",
        "driver with pointer-indirect access: unknown address vs region annotation (Section 4.3)",
        src,
        "",
    );
    // The imprecise access is the second lw (at main+8).
    let target = w.image.entry.offset(8);
    // Design knowledge: the descriptor table lives entirely in SRAM, so
    // the access never touches flash or MMIO — without the annotation the
    // analysis must charge the slowest module in the map.
    let annots = AnnotationSet::parse(&format!("access {target} range 0x8000..0x9000;\n"))
        .expect("driver annotations parse");
    (w, annots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{AnalyzerConfig, WcetAnalyzer};
    use wcet_isa::interp::{Interpreter, MachineConfig};

    #[test]
    fn all_workloads_assemble_and_run() {
        let mut workloads = vec![
            flight_control(),
            message_handler(16),
            state_machine(4),
            error_handling(4),
            matrix_kernel(4),
        ];
        let (b, s) = single_path_pair();
        workloads.push(b);
        workloads.push(s);
        let (k, f) = cache_pair();
        workloads.push(k);
        workloads.push(f);
        for w in &workloads {
            let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
            let outcome = interp.run(10_000_000);
            assert!(
                outcome.is_ok(),
                "workload {} must run: {:?}",
                w.name,
                outcome.err()
            );
        }
    }

    #[test]
    fn flight_control_modes_analyzable() {
        let w = flight_control();
        let mut config = AnalyzerConfig::new();
        config.annotations = w.annotations.clone();
        let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
        let global = report.mode_wcet[&None];
        let ground = report.mode_wcet[&Some("ground".to_owned())];
        let air = report.mode_wcet[&Some("air".to_owned())];
        assert!(ground < global, "ground mode must be much cheaper");
        assert!(air <= global);
    }

    #[test]
    fn message_handler_needs_annotations() {
        let w = message_handler(16);
        // Without annotations: unbounded device loops.
        assert!(WcetAnalyzer::new().analyze(&w.image).is_err());
        // With annotations: analyzable.
        let mut config = AnalyzerConfig::new();
        config.annotations = w.annotations.clone();
        let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
        assert!(report.wcet_cycles > 0);
    }

    #[test]
    fn state_machine_resolves_dispatch() {
        let w = state_machine(4);
        let report = WcetAnalyzer::new().analyze(&w.image).unwrap();
        assert_eq!(report.trace.unresolved_final, 0);
        assert_eq!(report.functions.len(), 5, "main + 4 handlers");
    }

    #[test]
    fn single_path_workloads_consistent() {
        let (branchy, single) = single_path_pair();
        for input in [0u32, 5] {
            let run = |w: &Workload| {
                let mut i = Interpreter::with_config(&w.image, MachineConfig::simple());
                i.poke_word(Addr(0xf000_0000), input);
                i.run(10_000).unwrap();
                i.reg(wcet_isa::Reg::new(3))
            };
            assert_eq!(run(&branchy), run(&single), "input {input}");
        }
    }

    #[test]
    fn matrix_kernel_computes() {
        let w = matrix_kernel(2);
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        // mat = [[1,2],[3,4]], vec = [5,6].
        interp.poke_word(Addr(0x8000), 1);
        interp.poke_word(Addr(0x8004), 2);
        interp.poke_word(Addr(0x8008), 3);
        interp.poke_word(Addr(0x800c), 4);
        interp.poke_word(Addr(0xa000), 5);
        interp.poke_word(Addr(0xa004), 6);
        interp.run(100_000).unwrap();
        assert_eq!(interp.peek_word(Addr(0xb000)), 17);
        assert_eq!(interp.peek_word(Addr(0xb004)), 39);
    }

    #[test]
    fn call_fanout_analyzes_and_is_sound() {
        let w = call_fanout(12);
        let report = WcetAnalyzer::new().analyze(&w.image).unwrap();
        assert_eq!(report.functions.len(), 13, "main + 12 leaves");
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp.run(10_000_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
        assert!(report.bcet_cycles <= observed);
    }

    #[test]
    fn call_fanout_overrides_change_one_function_only() {
        let base = call_fanout_with(8, &[]);
        let same = call_fanout(8);
        assert_eq!(
            base.image, same.image,
            "no overrides = the default workload"
        );
        let mutated = call_fanout_with(8, &[(3, 29)]);
        assert_ne!(base.image.code, mutated.image.code);
        // Exactly the victim leaf's bytes differ: compare per function.
        let f3 = base.image.symbol("f3").unwrap();
        let f4 = base.image.symbol("f4").unwrap();
        assert_ne!(
            base.image.code_range_hash(f3, f4),
            mutated.image.code_range_hash(f3, f4),
            "the mutated leaf's bytes changed"
        );
        let end = base.image.code.end();
        assert_eq!(
            base.image.code_range_hash(f4, end),
            mutated.image.code_range_hash(f4, end),
            "everything after the victim is untouched"
        );
        assert_eq!(
            base.image.code_range_hash(base.image.entry, f3),
            mutated.image.code_range_hash(mutated.image.entry, f3),
            "everything before the victim is untouched"
        );
    }

    #[test]
    fn call_tree_heavy_analyzes_and_is_sound() {
        let w = call_tree_heavy(3, 4, &[(5, 9)]);
        let report = WcetAnalyzer::new().analyze(&w.image).unwrap();
        assert_eq!(
            report.functions.len(),
            17,
            "main + 3 mids + 12 leaves + scale"
        );
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp.run(100_000_000).unwrap().cycles;
        assert!(report.wcet_cycles >= observed);
        assert!(report.bcet_cycles <= observed);

        // Mutating one leaf changes exactly that leaf's bytes.
        let base = call_tree_heavy(3, 4, &[]);
        let f5 = base.image.symbol("f5").unwrap();
        let f6 = base.image.symbol("f6").unwrap();
        assert_ne!(
            base.image.code_range_hash(f5, f6),
            w.image.code_range_hash(f5, f6)
        );
        assert_eq!(
            base.image.code_range_hash(base.image.entry, f5),
            w.image.code_range_hash(w.image.entry, f5)
        );
    }

    #[test]
    fn corpus_is_the_documented_set() {
        let names: Vec<&str> = corpus().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "flight_control",
                "message_handler",
                "state_machine",
                "error_handling",
                "matrix_kernel",
                "branchy",
                "single_path",
                "cache_killer",
                "cache_friendly",
                "call_fanout",
                "call_tree_heavy",
                "context_killer",
                "persistence_killer",
                "branch_heavy",
                "pipeline_killer",
            ]
        );
    }

    #[test]
    fn persistence_killer_analyzes_and_is_sound() {
        let w = persistence_killer();
        for machine in [MachineConfig::simple(), MachineConfig::with_caches()] {
            let config = AnalyzerConfig {
                machine: machine.clone(),
                annotations: w.annotations.clone(),
                ..AnalyzerConfig::new()
            };
            let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
            let mut interp = Interpreter::with_config(&w.image, machine);
            let observed = interp.run(10_000_000).unwrap().cycles;
            assert!(report.wcet_cycles >= observed);
            assert!(report.bcet_cycles <= observed);
        }
    }

    #[test]
    fn context_killer_tightens_at_depth_one() {
        let w = context_killer();
        let analyze = |depth: usize| {
            let config = AnalyzerConfig {
                context_depth: depth,
                ..AnalyzerConfig::new()
            };
            WcetAnalyzer::with_config(config).analyze(&w.image).unwrap()
        };
        let merged = analyze(0);
        let ctx = analyze(1);
        assert!(
            ctx.wcet_cycles < merged.wcet_cycles,
            "depth 1 must tighten: {} vs {}",
            ctx.wcet_cycles,
            merged.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp.run(1_000_000).unwrap().cycles;
        for r in [&merged, &ctx] {
            assert!(r.wcet_cycles >= observed);
            assert!(r.bcet_cycles <= observed);
        }
    }

    #[test]
    fn call_tree_heavy_tightens_at_depth_one() {
        // The shared clamped `scale` subroutine: merged analysis pays the
        // clamp bound (31) at every leaf's call; context-sensitive
        // analysis pays each leaf's actual argument (1..7).
        let w = call_tree_heavy(2, 3, &[]);
        let analyze = |depth: usize| {
            let config = AnalyzerConfig {
                context_depth: depth,
                ..AnalyzerConfig::new()
            };
            WcetAnalyzer::with_config(config).analyze(&w.image).unwrap()
        };
        let merged = analyze(0);
        let ctx = analyze(1);
        assert!(
            ctx.wcet_cycles < merged.wcet_cycles,
            "depth 1 must tighten the call tree: {} vs {}",
            ctx.wcet_cycles,
            merged.wcet_cycles
        );
        let mut interp = Interpreter::with_config(&w.image, MachineConfig::simple());
        let observed = interp.run(100_000_000).unwrap().cycles;
        for r in [&merged, &ctx] {
            assert!(r.wcet_cycles >= observed);
            assert!(r.bcet_cycles <= observed);
        }
    }

    #[test]
    fn pipeline_killer_tightens_past_ten_percent() {
        for isa in [IsaKind::House, IsaKind::Rv32i] {
            let w = pipeline_killer_for(isa);
            let analyze = |pipeline: bool| {
                let mut machine = MachineConfig::simple_for(isa);
                machine.pipeline = pipeline;
                let config = AnalyzerConfig {
                    machine: machine.clone(),
                    pipeline,
                    isa,
                    ..AnalyzerConfig::new()
                };
                let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
                let mut interp = Interpreter::with_config(&w.image, machine);
                let observed = interp.run(10_000_000).unwrap().cycles;
                assert!(report.wcet_cycles >= observed, "{}: unsound", isa.name());
                assert!(report.bcet_cycles <= observed, "{}: unsound", isa.name());
                report.wcet_cycles
            };
            let flat = analyze(false);
            let piped = analyze(true);
            assert!(
                piped * 10 <= flat * 9,
                "{}: pipeline must tighten >= 10%: {piped} vs {flat}",
                isa.name()
            );
        }
    }

    #[test]
    fn branch_heavy_stays_sound_under_prediction() {
        for isa in [IsaKind::House, IsaKind::Rv32i] {
            let w = branch_heavy_for(isa);
            for pipeline in [false, true] {
                let mut machine = MachineConfig::simple_for(isa);
                machine.pipeline = pipeline;
                let config = AnalyzerConfig {
                    machine: machine.clone(),
                    pipeline,
                    isa,
                    ..AnalyzerConfig::new()
                };
                let report = WcetAnalyzer::with_config(config).analyze(&w.image).unwrap();
                let mut interp = Interpreter::with_config(&w.image, machine);
                let observed = interp.run(10_000_000).unwrap().cycles;
                assert!(
                    report.bcet_cycles <= observed && observed <= report.wcet_cycles,
                    "{} pipeline={pipeline}: {} !in [{}, {}]",
                    isa.name(),
                    observed,
                    report.bcet_cycles,
                    report.wcet_cycles
                );
            }
        }
    }

    #[test]
    fn rv32i_corpus_is_the_documented_set() {
        let ports = rv32i_corpus();
        let names: Vec<&str> = ports.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "flight_control",
                "message_handler",
                "matrix_kernel",
                "context_killer",
                "persistence_killer",
                "branch_heavy",
                "pipeline_killer",
            ]
        );
        for w in &ports {
            assert_eq!(w.image.isa, IsaKind::Rv32i, "{} carries the tag", w.name);
        }
    }

    #[test]
    fn rv32i_ports_run_and_match_house_semantics() {
        // The same surface source computes the same values on both
        // backends; only encodings and cycle counts differ.
        let run = |w: &Workload, pokes: &[(u32, u32)], out: &dyn Fn(&mut Interpreter) -> u32| {
            let mut i = Interpreter::with_config(&w.image, MachineConfig::simple_for(w.image.isa));
            for &(addr, value) in pokes {
                i.poke_word(Addr(addr), value);
            }
            i.run(10_000_000).unwrap();
            out(&mut i)
        };
        let r5 = |i: &mut Interpreter| i.reg(wcet_isa::Reg::new(5));
        for input in [0u32, 1] {
            assert_eq!(
                run(&flight_control(), &[(0xf000_0000, input)], &r5),
                run(
                    &flight_control_for(IsaKind::Rv32i),
                    &[(0xf000_0000, input)],
                    &r5
                ),
                "flight_control input {input}"
            );
        }
        let out0 = |i: &mut Interpreter| i.peek_word(Addr(0xb000));
        let mat = [
            (0x8000, 1),
            (0x8004, 2),
            (0x8008, 3),
            (0x800c, 4),
            (0xa000, 5),
            (0xa004, 6),
        ];
        assert_eq!(
            run(&matrix_kernel(2), &mat, &out0),
            run(&matrix_kernel_for(IsaKind::Rv32i, 2), &mat, &out0),
            "matrix_kernel out[0]"
        );
        let r3 = |i: &mut Interpreter| i.reg(wcet_isa::Reg::new(3));
        assert_eq!(
            run(&context_killer(), &[], &r3),
            run(&context_killer_for(IsaKind::Rv32i), &[], &r3),
            "context_killer accumulator"
        );
    }

    #[test]
    fn rv32i_ports_differ_from_house_in_bytes_and_cycles() {
        let house = persistence_killer();
        let rv32 = persistence_killer_for(IsaKind::Rv32i);
        assert_ne!(house.image.code, rv32.image.code, "different encodings");
        let cycles = |w: &Workload| {
            let mut i = Interpreter::with_config(&w.image, MachineConfig::simple_for(w.image.isa));
            i.run(10_000_000).unwrap().cycles
        };
        // The timing models are deliberately different, so identical
        // source must not yield identical cycle counts.
        assert_ne!(cycles(&house), cycles(&rv32), "different timing models");
    }

    #[test]
    fn error_annotations_build() {
        let w = error_handling(4);
        let (exclude, budget) = error_annotations(&w, 4, 1);
        assert_ne!(exclude, AnnotationSet::new());
        assert_ne!(budget, AnnotationSet::new());
    }
}
